package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saco/internal/mat"
)

// randCSR builds a random m-by-n sparse matrix with the given density.
func randCSR(rng *rand.Rand, m, n int, density float64) *CSR {
	coo := NewCOO(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestCOOBuildAndDuplicates(t *testing.T) {
	coo := NewCOO(2, 3)
	coo.Add(0, 1, 2)
	coo.Add(0, 1, 3) // duplicate: summed
	coo.Add(1, 0, -1)
	coo.Add(1, 2, 0) // explicit zero: dropped
	a := coo.ToCSR()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", a.NNZ())
	}
	d := a.ToDense()
	if d.At(0, 1) != 5 || d.At(1, 0) != -1 || d.At(1, 2) != 0 {
		t.Fatalf("dense = %v", d.Data)
	}
}

func TestCOODuplicateCancellation(t *testing.T) {
	coo := NewCOO(1, 1)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, -1)
	if nnz := coo.ToCSR().NNZ(); nnz != 0 {
		t.Fatalf("cancelled duplicate kept: NNZ = %d", nnz)
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(2, 2, []int{0, 1}, []int{0}, []float64{1}); err == nil {
		t.Fatal("expected rowPtr length error")
	}
	if _, err := NewCSR(1, 2, []int{0, 2}, []int{1, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected unsorted column error")
	}
	if _, err := NewCSR(1, 2, []int{0, 1}, []int{5}, []float64{1}); err == nil {
		t.Fatal("expected out-of-range column error")
	}
	if _, err := NewCSR(1, 2, []int{0, 1}, []int{0}, []float64{1}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCSR(rng, 20, 15, 0.3)
	d := a.ToDense()
	x := randVec(rng, 15)
	y1 := make([]float64, 20)
	y2 := make([]float64, 20)
	a.MulVec(x, y1)
	mat.Gemv(1, d, x, 0, y2)
	for i := range y1 {
		if !approxEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y1[i], y2[i])
		}
	}
}

func TestMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randCSR(rng, 20, 15, 0.3)
	d := a.ToDense()
	x := randVec(rng, 20)
	y1 := make([]float64, 15)
	y2 := make([]float64, 15)
	a.MulVecT(x, y1)
	mat.GemvT(1, d, x, 0, y2)
	for i := range y1 {
		if !approxEq(y1[i], y2[i], 1e-12) {
			t.Fatalf("MulVecT[%d] = %v, want %v", i, y1[i], y2[i])
		}
	}
}

func TestCSRtoCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCSR(rng, 25, 18, 0.2)
	back := a.ToCSC().ToCSR()
	if !a.ToDense().Equal(back.ToDense()) {
		t.Fatal("CSR -> CSC -> CSR round trip changed the matrix")
	}
}

func TestCSCOpsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCSR(rng, 30, 12, 0.4)
	c := a.ToCSC()
	d := a.ToDense()
	cols := []int{1, 5, 9}

	// ColTMulVec
	v := randVec(rng, 30)
	dst := make([]float64, 3)
	c.ColTMulVec(cols, v, dst)
	for k, j := range cols {
		var want float64
		for i := 0; i < 30; i++ {
			want += d.At(i, j) * v[i]
		}
		if !approxEq(dst[k], want, 1e-12) {
			t.Fatalf("ColTMulVec[%d] = %v, want %v", k, dst[k], want)
		}
	}

	// ColMulAdd
	coef := []float64{0.5, -2, 1}
	u := randVec(rng, 30)
	uRef := append([]float64(nil), u...)
	c.ColMulAdd(cols, coef, u)
	for i := 0; i < 30; i++ {
		want := uRef[i]
		for k, j := range cols {
			want += d.At(i, j) * coef[k]
		}
		if !approxEq(u[i], want, 1e-12) {
			t.Fatalf("ColMulAdd[%d] = %v, want %v", i, u[i], want)
		}
	}

	// ColGram
	g := mat.NewDense(3, 3)
	c.ColGram(cols, g)
	for p, jp := range cols {
		for q, jq := range cols {
			var want float64
			for i := 0; i < 30; i++ {
				want += d.At(i, jp) * d.At(i, jq)
			}
			if !approxEq(g.At(p, q), want, 1e-12) {
				t.Fatalf("ColGram[%d,%d] = %v, want %v", p, q, g.At(p, q), want)
			}
		}
	}

	// ColNormSq agrees with the Gram diagonal.
	for p, j := range cols {
		if !approxEq(c.ColNormSq(j), g.At(p, p), 1e-12) {
			t.Fatalf("ColNormSq(%d) = %v, want %v", j, c.ColNormSq(j), g.At(p, p))
		}
	}
}

func TestCSRRowOpsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 14, 40, 0.3)
	d := a.ToDense()
	rows := []int{0, 7, 13, 7} // repeated row allowed (SVM can resample)

	x := randVec(rng, 40)
	dst := make([]float64, len(rows))
	a.RowMulVec(rows, x, dst)
	for k, r := range rows {
		want := mat.Dot(d.Row(r), x)
		if !approxEq(dst[k], want, 1e-12) {
			t.Fatalf("RowMulVec[%d] = %v, want %v", k, dst[k], want)
		}
	}

	g := mat.NewDense(len(rows), len(rows))
	a.RowGram(rows, g)
	for p, rp := range rows {
		for q, rq := range rows {
			want := mat.Dot(d.Row(rp), d.Row(rq))
			if !approxEq(g.At(p, q), want, 1e-12) {
				t.Fatalf("RowGram[%d,%d] = %v, want %v", p, q, g.At(p, q), want)
			}
		}
	}

	u := randVec(rng, 40)
	uRef := append([]float64(nil), u...)
	a.RowTAxpy(7, 2.5, u)
	for j := 0; j < 40; j++ {
		want := uRef[j] + 2.5*d.At(7, j)
		if !approxEq(u[j], want, 1e-12) {
			t.Fatalf("RowTAxpy[%d] = %v, want %v", j, u[j], want)
		}
	}

	if !approxEq(a.RowNormSq(7), mat.Nrm2Sq(d.Row(7)), 1e-12) {
		t.Fatal("RowNormSq mismatch")
	}
}

func TestSliceRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randCSR(rng, 17, 9, 0.35)
	d := a.ToDense()
	b := a.SliceRows(5, 12)
	if b.M != 7 || b.N != 9 {
		t.Fatalf("SliceRows dims %dx%d", b.M, b.N)
	}
	bd := b.ToDense()
	for i := 0; i < 7; i++ {
		for j := 0; j < 9; j++ {
			if bd.At(i, j) != d.At(5+i, j) {
				t.Fatalf("SliceRows[%d,%d] mismatch", i, j)
			}
		}
	}
	// Empty slice is valid.
	e := a.SliceRows(4, 4)
	if e.M != 0 || e.NNZ() != 0 {
		t.Fatal("empty row slice not empty")
	}
}

func TestSliceCols(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSR(rng, 11, 20, 0.3)
	d := a.ToDense()
	b := a.SliceCols(6, 15)
	if b.M != 11 || b.N != 9 {
		t.Fatalf("SliceCols dims %dx%d", b.M, b.N)
	}
	bd := b.ToDense()
	for i := 0; i < 11; i++ {
		for j := 0; j < 9; j++ {
			if bd.At(i, j) != d.At(i, 6+j) {
				t.Fatalf("SliceCols[%d,%d] mismatch", i, j)
			}
		}
	}
}

func TestSlicePartitionReassembles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randCSR(rng, 23, 13, 0.25)
	x := randVec(rng, 13)
	want := make([]float64, 23)
	a.MulVec(x, want)
	// Row partition: stacking local MulVec results reproduces the global one.
	got := make([]float64, 0, 23)
	for _, cut := range [][2]int{{0, 8}, {8, 16}, {16, 23}} {
		loc := a.SliceRows(cut[0], cut[1])
		y := make([]float64, loc.M)
		loc.MulVec(x, y)
		got = append(got, y...)
	}
	for i := range want {
		if !approxEq(got[i], want[i], 1e-12) {
			t.Fatalf("row-partitioned MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Column partition: summing local row-dot contributions reproduces A·x.
	sum := make([]float64, 23)
	for _, cut := range [][2]int{{0, 5}, {5, 13}} {
		loc := a.SliceCols(cut[0], cut[1])
		y := make([]float64, 23)
		loc.MulVec(x[cut[0]:cut[1]], y)
		mat.Axpy(1, y, sum)
	}
	for i := range want {
		if !approxEq(sum[i], want[i], 1e-12) {
			t.Fatalf("col-partitioned MulVec[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
}

func TestDensityAndFromDense(t *testing.T) {
	d := mat.NewDense(2, 2)
	d.Set(0, 0, 1)
	a := FromDense(d)
	if a.NNZ() != 1 || a.Density() != 0.25 {
		t.Fatalf("NNZ=%d density=%v", a.NNZ(), a.Density())
	}
	if (&CSR{M: 0, N: 5, RowPtr: []int{0}}).Density() != 0 {
		t.Fatal("empty density")
	}
}

func TestDenseViewsMatchSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randCSR(rng, 18, 10, 0.5)
	d := a.ToDense()
	c := a.ToCSC()
	dc := DenseCols{A: d}
	dr := DenseRows{A: d}

	cols := []int{0, 3, 9}
	v := randVec(rng, 18)
	s1 := make([]float64, 3)
	s2 := make([]float64, 3)
	c.ColTMulVec(cols, v, s1)
	dc.ColTMulVec(cols, v, s2)
	for k := range s1 {
		if !approxEq(s1[k], s2[k], 1e-12) {
			t.Fatalf("DenseCols.ColTMulVec[%d] mismatch", k)
		}
	}

	g1 := mat.NewDense(3, 3)
	g2 := mat.NewDense(3, 3)
	c.ColGram(cols, g1)
	dc.ColGram(cols, g2)
	if mat.MaxAbsDiff(g1, g2) > 1e-12 {
		t.Fatal("DenseCols.ColGram mismatch")
	}

	u1 := randVec(rng, 18)
	u2 := append([]float64(nil), u1...)
	coef := []float64{1, -1, 0.5}
	c.ColMulAdd(cols, coef, u1)
	dc.ColMulAdd(cols, coef, u2)
	for i := range u1 {
		if !approxEq(u1[i], u2[i], 1e-12) {
			t.Fatalf("DenseCols.ColMulAdd[%d] mismatch", i)
		}
	}

	rows := []int{2, 11}
	x := randVec(rng, 10)
	r1 := make([]float64, 2)
	r2 := make([]float64, 2)
	a.RowMulVec(rows, x, r1)
	dr.RowMulVec(rows, x, r2)
	for k := range r1 {
		if !approxEq(r1[k], r2[k], 1e-12) {
			t.Fatalf("DenseRows.RowMulVec[%d] mismatch", k)
		}
	}

	gr1 := mat.NewDense(2, 2)
	gr2 := mat.NewDense(2, 2)
	a.RowGram(rows, gr1)
	dr.RowGram(rows, gr2)
	if mat.MaxAbsDiff(gr1, gr2) > 1e-12 {
		t.Fatal("DenseRows.RowGram mismatch")
	}

	if !approxEq(dc.ColNormSq(3), c.ColNormSq(3), 1e-12) {
		t.Fatal("DenseCols.ColNormSq mismatch")
	}
	if !approxEq(dr.RowNormSq(2), a.RowNormSq(2), 1e-12) {
		t.Fatal("DenseRows.RowNormSq mismatch")
	}
}

// Property: Gram matrices are symmetric PSD (all Rayleigh quotients >= 0).
func TestColGramPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(20)
		n := 2 + rng.Intn(10)
		a := randCSR(rng, m, n, 0.4)
		c := a.ToCSC()
		k := 1 + rng.Intn(n)
		cols := rng.Perm(n)[:k]
		g := mat.NewDense(k, k)
		c.ColGram(cols, g)
		// Symmetry is by construction; check PSD via random probes.
		for probe := 0; probe < 4; probe++ {
			v := randVec(rng, k)
			w := make([]float64, k)
			mat.Gemv(1, g, v, 0, w)
			if mat.Dot(v, w) < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: xᵀ(Aᵀy) == (Ax)ᵀy — the adjoint identity ties MulVec and
// MulVecT together.
func TestAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		a := randCSR(rng, m, n, 0.3)
		x := randVec(rng, n)
		y := randVec(rng, m)
		ax := make([]float64, m)
		a.MulVec(x, ax)
		aty := make([]float64, n)
		a.MulVecT(y, aty)
		return approxEq(mat.Dot(ax, y), mat.Dot(x, aty), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
