package sparse

// Shared-memory backend plumbing for the sparse matrix types.
//
// Every matrix carries a worker count for its kernels; the zero value is
// sequential, so struct literals and the simulated distributed runtime
// (whose goroutine ranks must not spawn nested pools) keep today's
// behavior. Solvers opt in per solve through WithKernelWorkers, which
// returns a shallow view sharing the index/value storage — kernels only
// read the matrix, so views are safe to use concurrently.
//
// The parallel kernels partition *independent output elements* (rows of
// an SpMV, entries of a batched product, rows of a Gram triangle) and
// keep every element's summation order unchanged, so a multicore kernel
// is bitwise identical to its sequential run — the property the
// backend-equivalence tests in internal/core assert end to end.

// kernelWorkers normalizes a requested worker count: anything below 2
// means sequential.
func kernelWorkers(w int) int {
	if w < 2 {
		return 1
	}
	return w
}

// WithKernelWorkers returns a view of the matrix whose kernels fan out
// across w workers (w < 2 gives the sequential view). The view shares
// the underlying storage.
func (a *CSC) WithKernelWorkers(w int) any {
	b := *a
	b.workers = kernelWorkers(w)
	return &b
}

// KernelWorkers reports the worker count of this matrix's kernels.
func (a *CSC) KernelWorkers() int { return kernelWorkers(a.workers) }

// WithKernelWorkers returns a view of the matrix whose kernels fan out
// across w workers (w < 2 gives the sequential view). The view shares
// the underlying storage.
func (a *CSR) WithKernelWorkers(w int) any {
	b := *a
	b.workers = kernelWorkers(w)
	return &b
}

// KernelWorkers reports the worker count of this matrix's kernels.
func (a *CSR) KernelWorkers() int { return kernelWorkers(a.workers) }

// WithKernelWorkers returns a view whose kernels fan out across w
// workers; DenseCols is a value type, so the receiver copy is the view.
func (d DenseCols) WithKernelWorkers(w int) any {
	d.Workers = kernelWorkers(w)
	return d
}

// KernelWorkers reports the worker count of this matrix's kernels.
func (d DenseCols) KernelWorkers() int { return kernelWorkers(d.Workers) }

// WithKernelWorkers returns a view whose kernels fan out across w
// workers; DenseRows is a value type, so the receiver copy is the view.
func (d DenseRows) WithKernelWorkers(w int) any {
	d.Workers = kernelWorkers(w)
	return d
}

// KernelWorkers reports the worker count of this matrix's kernels.
func (d DenseRows) KernelWorkers() int { return kernelWorkers(d.Workers) }
