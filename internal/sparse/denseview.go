package sparse

import (
	"fmt"

	"saco/internal/mat"
)

// DenseCols adapts a dense matrix to the column-sampling access pattern of
// the Lasso solvers, so dense datasets (epsilon, gisette, leu in the paper)
// flow through the same code path as sparse ones.
type DenseCols struct{ A *mat.Dense }

// Dims returns (rows, columns).
func (d DenseCols) Dims() (int, int) { return d.A.R, d.A.C }

// ColNormSq returns ‖A_:j‖².
func (d DenseCols) ColNormSq(j int) float64 {
	var s float64
	for i := 0; i < d.A.R; i++ {
		v := d.A.At(i, j)
		s += v * v
	}
	return s
}

// ColTMulVec computes dst = A_Sᵀ·v.
func (d DenseCols) ColTMulVec(cols []int, v []float64, dst []float64) {
	if len(v) != d.A.R || len(dst) != len(cols) {
		panic(fmt.Sprintf("sparse: DenseCols.ColTMulVec shape mismatch A=%dx%d len(v)=%d", d.A.R, d.A.C, len(v)))
	}
	for k := range dst {
		dst[k] = 0
	}
	for i := 0; i < d.A.R; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := d.A.Row(i)
		for k, j := range cols {
			dst[k] += row[j] * vi
		}
	}
}

// ColMulAdd computes v += A_S·coef.
func (d DenseCols) ColMulAdd(cols []int, coef []float64, v []float64) {
	if len(v) != d.A.R || len(coef) != len(cols) {
		panic("sparse: DenseCols.ColMulAdd shape mismatch")
	}
	for i := 0; i < d.A.R; i++ {
		row := d.A.Row(i)
		var s float64
		for k, j := range cols {
			s += row[j] * coef[k]
		}
		v[i] += s
	}
}

// ColGram computes dst = A_SᵀA_S, exploiting symmetry.
func (d DenseCols) ColGram(cols []int, dst *mat.Dense) {
	s := len(cols)
	if dst.R != s || dst.C != s {
		panic("sparse: DenseCols.ColGram dst shape mismatch")
	}
	dst.Zero()
	for i := 0; i < d.A.R; i++ {
		row := d.A.Row(i)
		for a := 0; a < s; a++ {
			va := row[cols[a]]
			if va == 0 {
				continue
			}
			drow := dst.Row(a)
			for b := a; b < s; b++ {
				drow[b] += va * row[cols[b]]
			}
		}
	}
	for i := 1; i < s; i++ {
		for j := 0; j < i; j++ {
			dst.Set(i, j, dst.At(j, i))
		}
	}
}

// MulVec computes y = A·x.
func (d DenseCols) MulVec(x, y []float64) { mat.Gemv(1, d.A, x, 0, y) }

// MulVecT computes y = Aᵀ·x.
func (d DenseCols) MulVecT(x, y []float64) { mat.GemvT(1, d.A, x, 0, y) }

// DenseRows adapts a dense matrix to the row-sampling access pattern of
// the dual coordinate-descent SVM solvers.
type DenseRows struct{ A *mat.Dense }

// Dims returns (rows, columns).
func (d DenseRows) Dims() (int, int) { return d.A.R, d.A.C }

// RowNormSq returns ‖A_row‖².
func (d DenseRows) RowNormSq(row int) float64 { return mat.Nrm2Sq(d.A.Row(row)) }

// RowMulVec computes dst[k] = A_{rows[k]}·x.
func (d DenseRows) RowMulVec(rows []int, x []float64, dst []float64) {
	if len(x) != d.A.C || len(dst) != len(rows) {
		panic("sparse: DenseRows.RowMulVec shape mismatch")
	}
	for k, r := range rows {
		dst[k] = mat.Dot(d.A.Row(r), x)
	}
}

// RowTAxpy performs x += alpha·A_rowᵀ.
func (d DenseRows) RowTAxpy(row int, alpha float64, x []float64) {
	mat.Axpy(alpha, d.A.Row(row), x)
}

// RowGram computes dst = A_R·AᵀR.
func (d DenseRows) RowGram(rows []int, dst *mat.Dense) {
	s := len(rows)
	if dst.R != s || dst.C != s {
		panic("sparse: DenseRows.RowGram dst shape mismatch")
	}
	for i := 0; i < s; i++ {
		ri := d.A.Row(rows[i])
		for j := i; j < s; j++ {
			v := mat.Dot(ri, d.A.Row(rows[j]))
			dst.Set(i, j, v)
			dst.Set(j, i, v)
		}
	}
}

// MulVec computes y = A·x.
func (d DenseRows) MulVec(x, y []float64) { mat.Gemv(1, d.A, x, 0, y) }
