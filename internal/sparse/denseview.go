package sparse

import (
	"fmt"

	"saco/internal/mat"
	rt "saco/internal/runtime"
	"saco/internal/simd"
)

// DenseCols adapts a dense matrix to the column-sampling access pattern of
// the Lasso solvers, so dense datasets (epsilon, gisette, leu in the paper)
// flow through the same code path as sparse ones. Workers selects the
// kernel worker count (0 or 1 = sequential); the parallel paths partition
// independent output elements only, so results are bitwise identical on
// every backend.
type DenseCols struct {
	A       *mat.Dense
	Workers int
}

// Dims returns (rows, columns).
func (d DenseCols) Dims() (int, int) { return d.A.R, d.A.C }

// Density returns the fraction of stored entries that are nonzero; the
// async backend's collision-rate damping reads it through the optional
// Density capability shared with CSR/CSC.
func (d DenseCols) Density() float64 { return denseDensity(d.A) }

// ColNormSq returns ‖A_:j‖².
func (d DenseCols) ColNormSq(j int) float64 {
	var s float64
	for i := 0; i < d.A.R; i++ {
		v := d.A.At(i, j)
		s += v * v
	}
	return s
}

// ColTMulVec computes dst = A_Sᵀ·v. Workers own disjoint slices of dst
// and stream the rows of A in the same order as the sequential kernel,
// so each dst[k] accumulates identically.
func (d DenseCols) ColTMulVec(cols []int, v []float64, dst []float64) {
	if len(v) != d.A.R || len(dst) != len(cols) {
		panic(fmt.Sprintf("sparse: DenseCols.ColTMulVec shape mismatch A=%dx%d len(v)=%d", d.A.R, d.A.C, len(v)))
	}
	rt.For(d.KernelWorkers(), len(cols), 1, func(klo, khi int) {
		for k := klo; k < khi; k++ {
			dst[k] = 0
		}
		kr := simd.Active()
		for i := 0; i < d.A.R; i++ {
			kr.GatherAxpy(v[i], dst[klo:khi], d.A.Row(i), cols[klo:khi])
		}
	})
}

// ColMulAdd computes v += A_S·coef, partitioning the disjoint rows of v.
func (d DenseCols) ColMulAdd(cols []int, coef []float64, v []float64) {
	if len(v) != d.A.R || len(coef) != len(cols) {
		panic("sparse: DenseCols.ColMulAdd shape mismatch")
	}
	rt.For(d.KernelWorkers(), d.A.R, 128, func(lo, hi int) {
		kr := simd.Active()
		for i := lo; i < hi; i++ {
			v[i] += kr.GatherDot(0, coef, cols, d.A.Row(i))
		}
	})
}

// ColGram computes dst = A_SᵀA_S, exploiting symmetry. Workers own
// disjoint row bands of the upper triangle (balanced with TriangleRanges)
// and stream the data rows in sequential order, so every entry
// accumulates identically to the one-worker run.
func (d DenseCols) ColGram(cols []int, dst *mat.Dense) {
	s := len(cols)
	if dst.R != s || dst.C != s {
		panic("sparse: DenseCols.ColGram dst shape mismatch")
	}
	dst.Zero()
	gramRows := func(alo, ahi int) {
		kr := simd.Active()
		for i := 0; i < d.A.R; i++ {
			row := d.A.Row(i)
			for a := alo; a < ahi; a++ {
				va := row[cols[a]]
				if va == 0 {
					continue
				}
				kr.GatherAxpy(va, dst.Row(a)[a:], row, cols[a:])
			}
		}
	}
	if w := d.KernelWorkers(); w > 1 && s >= 4 {
		rt.Ranges(rt.TriangleRanges(s, w), gramRows)
	} else {
		gramRows(0, s)
	}
	dst.MirrorUpper()
}

// MulVec computes y = A·x across the kernel workers (row partition).
func (d DenseCols) MulVec(x, y []float64) {
	if len(x) != d.A.C || len(y) != d.A.R {
		panic("sparse: DenseCols.MulVec shape mismatch")
	}
	rt.For(d.KernelWorkers(), d.A.R, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = mat.Dot(d.A.Row(i), x)
		}
	})
}

// MulVecT computes y = Aᵀ·x.
func (d DenseCols) MulVecT(x, y []float64) { mat.GemvT(1, d.A, x, 0, y) }

// DenseRows adapts a dense matrix to the row-sampling access pattern of
// the dual coordinate-descent SVM solvers. Workers selects the kernel
// worker count (0 or 1 = sequential).
type DenseRows struct {
	A       *mat.Dense
	Workers int
}

// Dims returns (rows, columns).
func (d DenseRows) Dims() (int, int) { return d.A.R, d.A.C }

// Density returns the fraction of stored entries that are nonzero (see
// DenseCols.Density).
func (d DenseRows) Density() float64 { return denseDensity(d.A) }

// denseDensity counts nonzeros; one O(R·C) scan, trivial next to any
// solve that would consult it.
func denseDensity(a *mat.Dense) float64 {
	if a.R == 0 || a.C == 0 {
		return 0
	}
	nnz := 0
	for _, v := range a.Data {
		if v != 0 {
			nnz++
		}
	}
	return float64(nnz) / float64(len(a.Data))
}

// RowNormSq returns ‖A_row‖².
func (d DenseRows) RowNormSq(row int) float64 { return mat.Nrm2Sq(d.A.Row(row)) }

// RowMulVec computes dst[k] = A_{rows[k]}·x; the batched row dots are
// independent, so they partition across the kernel workers.
func (d DenseRows) RowMulVec(rows []int, x []float64, dst []float64) {
	if len(x) != d.A.C || len(dst) != len(rows) {
		panic("sparse: DenseRows.RowMulVec shape mismatch")
	}
	rt.For(d.KernelWorkers(), len(rows), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			dst[k] = mat.Dot(d.A.Row(rows[k]), x)
		}
	})
}

// RowTAxpy performs x += alpha·A_rowᵀ.
func (d DenseRows) RowTAxpy(row int, alpha float64, x []float64) {
	mat.Axpy(alpha, d.A.Row(row), x)
}

// RowGram computes dst = A_R·AᵀR, partitioning the triangle rows.
func (d DenseRows) RowGram(rows []int, dst *mat.Dense) {
	s := len(rows)
	if dst.R != s || dst.C != s {
		panic("sparse: DenseRows.RowGram dst shape mismatch")
	}
	// Upper triangle only inside the parallel region; mirroring after the
	// join avoids false sharing on other workers' Gram rows.
	gramRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := d.A.Row(rows[i])
			for j := i; j < s; j++ {
				dst.Set(i, j, mat.Dot(ri, d.A.Row(rows[j])))
			}
		}
	}
	if w := d.KernelWorkers(); w > 1 && s >= 4 {
		rt.Ranges(rt.TriangleRanges(s, w), gramRows)
	} else {
		gramRows(0, s)
	}
	dst.MirrorUpper()
}

// MulVec computes y = A·x across the kernel workers (row partition).
func (d DenseRows) MulVec(x, y []float64) {
	if len(x) != d.A.C || len(y) != d.A.R {
		panic("sparse: DenseRows.MulVec shape mismatch")
	}
	rt.For(d.KernelWorkers(), d.A.R, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = mat.Dot(d.A.Row(i), x)
		}
	})
}
