package sparse

import "saco/internal/mat"

// Atomic-vector kernels for the asynchronous (HOGWILD!-style) backend.
//
// The async solvers in internal/core share one iterate and one residual
// image across workers with no synchronization beyond element atomicity,
// so their kernels must read and write those vectors through
// mat.AtomicVec instead of plain slices. Each kernel below mirrors its
// plain counterpart's loop order exactly — a single-worker async solve
// therefore reproduces the sequential solver's arithmetic bit for bit,
// which is the anchor the async correctness tests are built on.
//
// Only the index-sampled kernels the inner loops touch are provided;
// whole-matrix products (MulVec) are taken on quiescent snapshots after
// the workers join, where plain kernels apply. CSC serves the Lasso
// solvers (column sampling), CSR the dual SVM solvers (row sampling).

// ColTMulVecAtomic computes dst[k] = A_:cols[k] · v with atomic loads of
// v — the gradient read A_Sᵀ·r of async coordinate descent, racing
// against concurrent residual updates.
func (a *CSC) ColTMulVecAtomic(cols []int, v *mat.AtomicVec, dst []float64) {
	if v.Len() != a.M || len(dst) < len(cols) {
		panic("sparse: ColTMulVecAtomic shape mismatch")
	}
	for k, j := range cols {
		var s float64
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			s += a.Val[p] * v.Load(a.RowIdx[p])
		}
		dst[k] = s
	}
}

// ColMulAddAtomic performs v += A_S·coef with per-element atomic adds —
// the racy residual update r += A_S·Δx of async coordinate descent.
// Concurrent updates to one row interleave in arbitrary order but none
// is lost.
func (a *CSC) ColMulAddAtomic(cols []int, coef []float64, v *mat.AtomicVec) {
	if v.Len() != a.M || len(coef) < len(cols) {
		panic("sparse: ColMulAddAtomic shape mismatch")
	}
	for k, j := range cols {
		c := coef[k]
		if c == 0 {
			continue
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			v.Add(a.RowIdx[p], c*a.Val[p])
		}
	}
}

// RowDotAtomic returns A_i · x with atomic loads of x — the stale-read
// margin of the async dual coordinate step.
func (a *CSR) RowDotAtomic(i int, x *mat.AtomicVec) float64 {
	if x.Len() != a.N {
		panic("sparse: RowDotAtomic shape mismatch")
	}
	var s float64
	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		s += a.Val[p] * x.Load(a.ColIdx[p])
	}
	return s
}

// RowTAxpyAtomic performs x += alpha·A_iᵀ with per-element atomic adds —
// the racy primal update of the async dual coordinate step. alpha == 0
// is a no-op, matching the plain RowTAxpy and the rest of the Axpy
// family (the internal/simd alpha == 0 contract); it previously issued
// x.Add(j, 0) calls, which dirtied cache lines under contention and
// disagreed with DenseRows.RowTAxpyAtomic's early return.
func (a *CSR) RowTAxpyAtomic(i int, alpha float64, x *mat.AtomicVec) {
	if x.Len() != a.N {
		panic("sparse: RowTAxpyAtomic shape mismatch")
	}
	if alpha == 0 {
		return
	}
	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		x.Add(a.ColIdx[p], alpha*a.Val[p])
	}
}

// The dense views carry the same atomic kernels, so dense datasets
// (epsilon, gisette, leu) run under BackendAsync exactly like sparse
// ones instead of being rejected. Each kernel mirrors its plain
// counterpart's loop order — including which zero terms the plain
// kernel skips or keeps — so the single-worker bitwise anchor holds for
// the dense views too.

// ColTMulVecAtomic computes dst[k] = A_:cols[k] · v with atomic loads of
// v, mirroring DenseCols.ColTMulVec's sequential path: rows stream in
// order, zero v elements are skipped (skipping only drops exact-zero
// addends, as the plain kernel does).
func (d DenseCols) ColTMulVecAtomic(cols []int, v *mat.AtomicVec, dst []float64) {
	if v.Len() != d.A.R || len(dst) < len(cols) {
		panic("sparse: DenseCols.ColTMulVecAtomic shape mismatch")
	}
	for k := range cols {
		dst[k] = 0
	}
	for i := 0; i < d.A.R; i++ {
		vi := v.Load(i)
		if vi == 0 {
			continue
		}
		row := d.A.Row(i)
		for k, j := range cols {
			dst[k] += row[j] * vi
		}
	}
}

// ColMulAddAtomic performs v += A_S·coef with one atomic add per row,
// mirroring DenseCols.ColMulAdd: the row's contribution accumulates in
// a private scalar in the plain kernel's order, then lands in a single
// Add — the only racy step, so interleavings can reorder but never tear
// or lose a row update.
func (d DenseCols) ColMulAddAtomic(cols []int, coef []float64, v *mat.AtomicVec) {
	if v.Len() != d.A.R || len(coef) < len(cols) {
		panic("sparse: DenseCols.ColMulAddAtomic shape mismatch")
	}
	for i := 0; i < d.A.R; i++ {
		row := d.A.Row(i)
		var s float64
		for k, j := range cols {
			s += row[j] * coef[k]
		}
		v.Add(i, s)
	}
}

// RowDotAtomic returns A_i · x with atomic loads of x, mirroring the
// mat.Dot the sequential DenseRows path uses: every column in order,
// zero terms included.
func (d DenseRows) RowDotAtomic(i int, x *mat.AtomicVec) float64 {
	if x.Len() != d.A.C {
		panic("sparse: DenseRows.RowDotAtomic shape mismatch")
	}
	row := d.A.Row(i)
	var s float64
	for j, v := range row {
		s += v * x.Load(j)
	}
	return s
}

// RowTAxpyAtomic performs x += alpha·A_iᵀ with per-element atomic adds,
// mirroring mat.Axpy (including its alpha == 0 early return).
func (d DenseRows) RowTAxpyAtomic(i int, alpha float64, x *mat.AtomicVec) {
	if x.Len() != d.A.C {
		panic("sparse: DenseRows.RowTAxpyAtomic shape mismatch")
	}
	if alpha == 0 {
		return
	}
	row := d.A.Row(i)
	for j, v := range row {
		x.Add(j, alpha*v)
	}
}
