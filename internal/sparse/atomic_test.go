package sparse

import (
	"testing"

	"saco/internal/mat"
)

// atomicTestMatrix builds a small fixed CSR/CSC pair.
func atomicTestMatrix(t *testing.T) (*CSR, *CSC) {
	t.Helper()
	coo := NewCOO(4, 5)
	coo.Add(0, 0, 1)
	coo.Add(0, 3, 2)
	coo.Add(1, 1, -3)
	coo.Add(1, 4, 0.5)
	coo.Add(2, 0, 4)
	coo.Add(2, 2, -1)
	coo.Add(3, 3, 2.5)
	csr := coo.ToCSR()
	return csr, csr.ToCSC()
}

// TestAtomicKernelsMatchPlain pins the anchor property the async solvers
// rely on: each atomic kernel, run without contention, reproduces its
// plain counterpart bit for bit (same loop order, same arithmetic).
func TestAtomicKernelsMatchPlain(t *testing.T) {
	csr, csc := atomicTestMatrix(t)
	rvals := []float64{0.5, -1, 2, 0.25}
	xvals := []float64{1, -2, 0.5, 3, -0.75}

	cols := []int{0, 3, 4}
	want := make([]float64, len(cols))
	csc.ColTMulVec(cols, rvals, want)
	got := make([]float64, len(cols))
	csc.ColTMulVecAtomic(cols, mat.NewAtomicVecFrom(rvals), got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColTMulVecAtomic[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	coef := []float64{2, -0.5, 1}
	plain := append([]float64(nil), rvals...)
	csc.ColMulAdd(cols, coef, plain)
	av := mat.NewAtomicVecFrom(rvals)
	csc.ColMulAddAtomic(cols, coef, av)
	for i := range plain {
		if av.Load(i) != plain[i] {
			t.Fatalf("ColMulAddAtomic[%d] = %v, want %v", i, av.Load(i), plain[i])
		}
	}

	xv := mat.NewAtomicVecFrom(xvals)
	one := make([]float64, 1)
	for i := 0; i < csr.M; i++ {
		csr.RowMulVec([]int{i}, xvals, one)
		if got := csr.RowDotAtomic(i, xv); got != one[0] {
			t.Fatalf("RowDotAtomic(%d) = %v, want %v", i, got, one[0])
		}
	}

	plainX := append([]float64(nil), xvals...)
	csr.RowTAxpy(2, 1.5, plainX)
	csr.RowTAxpyAtomic(2, 1.5, xv)
	for j := range plainX {
		if xv.Load(j) != plainX[j] {
			t.Fatalf("RowTAxpyAtomic[%d] = %v, want %v", j, xv.Load(j), plainX[j])
		}
	}
}

// TestDenseAtomicKernelsMatchPlain is the same anchor for the dense
// views: without contention each atomic kernel replays the plain dense
// kernel bit for bit, including which zero terms it skips.
func TestDenseAtomicKernelsMatchPlain(t *testing.T) {
	csr, _ := atomicTestMatrix(t)
	dc := DenseCols{A: csr.ToDense()}
	dr := DenseRows{A: csr.ToDense()}
	rvals := []float64{0.5, 0, 2, 0.25} // a zero exercises the skip path
	xvals := []float64{1, -2, 0, 3, -0.75}

	cols := []int{0, 3, 4}
	want := make([]float64, len(cols))
	dc.ColTMulVec(cols, rvals, want)
	got := make([]float64, len(cols))
	dc.ColTMulVecAtomic(cols, mat.NewAtomicVecFrom(rvals), got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DenseCols.ColTMulVecAtomic[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	coef := []float64{2, -0.5, 1}
	plain := append([]float64(nil), rvals...)
	dc.ColMulAdd(cols, coef, plain)
	av := mat.NewAtomicVecFrom(rvals)
	dc.ColMulAddAtomic(cols, coef, av)
	for i := range plain {
		if av.Load(i) != plain[i] {
			t.Fatalf("DenseCols.ColMulAddAtomic[%d] = %v, want %v", i, av.Load(i), plain[i])
		}
	}

	xv := mat.NewAtomicVecFrom(xvals)
	one := make([]float64, 1)
	for i := 0; i < dr.A.R; i++ {
		dr.RowMulVec([]int{i}, xvals, one)
		if got := dr.RowDotAtomic(i, xv); got != one[0] {
			t.Fatalf("DenseRows.RowDotAtomic(%d) = %v, want %v", i, got, one[0])
		}
	}

	plainX := append([]float64(nil), xvals...)
	dr.RowTAxpy(2, 1.5, plainX)
	dr.RowTAxpyAtomic(2, 1.5, xv)
	dr.RowTAxpy(0, 0, plainX) // alpha = 0: both paths must no-op
	dr.RowTAxpyAtomic(0, 0, xv)
	for j := range plainX {
		if xv.Load(j) != plainX[j] {
			t.Fatalf("DenseRows.RowTAxpyAtomic[%d] = %v, want %v", j, xv.Load(j), plainX[j])
		}
	}
}

// TestDenseViewDensity pins the Density capability the async damping
// heuristic consults.
func TestDenseViewDensity(t *testing.T) {
	csr, _ := atomicTestMatrix(t) // 7 nonzeros in 4x5
	if d := (DenseCols{A: csr.ToDense()}).Density(); d != 7.0/20.0 {
		t.Fatalf("DenseCols.Density() = %v, want %v", d, 7.0/20.0)
	}
	if d := (DenseRows{A: csr.ToDense()}).Density(); d != 7.0/20.0 {
		t.Fatalf("DenseRows.Density() = %v, want %v", d, 7.0/20.0)
	}
}
