package sparse

import (
	"math/rand"
	"testing"
)

// randSparseVec builds a random k-nonzero sparse vector over [0,n) as
// strictly increasing (idx, val) pairs.
func randSparseVec(rng *rand.Rand, n, k int) ([]int, []float64) {
	perm := rng.Perm(n)[:k]
	idx := append([]int(nil), perm...)
	for i := 1; i < len(idx); i++ { // insertion sort; k is small
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	val := make([]float64, k)
	for i := range val {
		val[i] = rng.NormFloat64()
	}
	return idx, val
}

// TestMulSparseVecAgainstDense checks both sparse-model kernels against
// the plain MulVec of the model's dense expansion. The merge kernel
// sums exactly the nonzero products the dense kernel sums (in the same
// column order, skipping only exact-zero terms), so the comparison is
// exact, not a tolerance.
func TestMulSparseVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSR(rng, 60, 40, 0.15)
	idx, val := randSparseVec(rng, 40, 9)
	dense := make([]float64, 40)
	for k, j := range idx {
		dense[j] = val[k]
	}

	want := make([]float64, 60)
	a.MulVec(dense, want)

	got := make([]float64, 60)
	a.MulSparseVec(idx, val, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CSR row %d: MulSparseVec %v != MulVec %v", i, got[i], want[i])
		}
	}

	dr := DenseRows{A: a.ToDense()}
	gotD := make([]float64, 60)
	dr.MulSparseVec(idx, val, gotD)
	for i := range want {
		if gotD[i] != want[i] {
			t.Fatalf("dense row %d: MulSparseVec %v != MulVec %v", i, gotD[i], want[i])
		}
	}
}

// TestMulSparseVecBatchedBitwise is the serving contract at the kernel
// level: scoring a batch in one call — at any worker width — is bitwise
// identical to scoring each row through its own single-row matrix.
func TestMulSparseVecBatchedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randCSR(rng, 200, 64, 0.2)
	idx, val := randSparseVec(rng, 64, 12)

	perRow := make([]float64, a.M)
	one := make([]float64, 1)
	for i := 0; i < a.M; i++ {
		row, err := NewCSR(1, a.N,
			[]int{0, a.RowPtr[i+1] - a.RowPtr[i]},
			a.ColIdx[a.RowPtr[i]:a.RowPtr[i+1]],
			a.Val[a.RowPtr[i]:a.RowPtr[i+1]])
		if err != nil {
			t.Fatal(err)
		}
		row.MulSparseVec(idx, val, one)
		perRow[i] = one[0]
	}

	for _, w := range []int{1, 3, 8} {
		batched := make([]float64, a.M)
		a.WithKernelWorkers(w).(*CSR).MulSparseVec(idx, val, batched)
		for i := range perRow {
			if batched[i] != perRow[i] {
				t.Fatalf("w=%d row %d: batched %v != per-row %v", w, i, batched[i], perRow[i])
			}
		}
	}
}

// TestMulSparseVecEmptySupport: an all-zero model scores everything 0.
func TestMulSparseVecEmptySupport(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCSR(rng, 10, 8, 0.4)
	y := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	a.MulSparseVec(nil, nil, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("row %d: %v, want 0", i, v)
		}
	}
}

// TestMulSparseVecPanics pins the kernel's validation: mismatched
// output length and malformed model supports must panic rather than
// read out of bounds.
func TestMulSparseVecPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 4, 6, 0.5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	y := make([]float64, 4)
	mustPanic("short y", func() { a.MulSparseVec([]int{0}, []float64{1}, y[:2]) })
	mustPanic("len mismatch", func() { a.MulSparseVec([]int{0, 1}, []float64{1}, y) })
	mustPanic("out of range", func() { a.MulSparseVec([]int{6}, []float64{1}, y) })
	mustPanic("out of order", func() { a.MulSparseVec([]int{3, 1}, []float64{1, 2}, y) })
	mustPanic("duplicate", func() { a.MulSparseVec([]int{2, 2}, []float64{1, 2}, y) })
}
