// Package datagen generates the synthetic stand-ins for the LIBSVM
// datasets of the paper's Tables II and IV. The original files (url,
// news20, covtype, epsilon, leu, w1a, duke, rcv1, gisette) cannot be
// downloaded in this offline environment, so each replica reproduces the
// properties the experiments actually depend on: the m×n shape (scaled
// where the original would not fit on one machine), the nonzero density f
// that drives the flop and bandwidth terms of Table I, dense vs sparse
// storage, and a planted model that makes the optimization problems
// well-posed and learnable.
package datagen

import (
	"fmt"
	"math"

	"saco/internal/mat"
	"saco/internal/rng"
	"saco/internal/sparse"
)

// Dataset is one generated problem instance. Exactly one of CSR and Dense
// is non-nil.
type Dataset struct {
	Name  string
	CSR   *sparse.CSR
	Dense *mat.Dense
	B     []float64 // regression targets or ±1 classification labels
	XTrue []float64 // planted model, when applicable
}

// Dims returns (rows, columns).
func (d *Dataset) Dims() (int, int) {
	if d.CSR != nil {
		return d.CSR.Dims()
	}
	return d.Dense.R, d.Dense.C
}

// NNZ returns the number of stored nonzeros.
func (d *Dataset) NNZ() int {
	if d.CSR != nil {
		return d.CSR.NNZ()
	}
	n := 0
	for _, v := range d.Dense.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Density returns NNZ/(m·n).
func (d *Dataset) Density() float64 {
	m, n := d.Dims()
	if m == 0 || n == 0 {
		return 0
	}
	return float64(d.NNZ()) / (float64(m) * float64(n))
}

// Cols returns a column-access view for the Lasso solvers.
func (d *Dataset) Cols() ColView {
	if d.CSR != nil {
		return d.CSR.ToCSC()
	}
	return sparse.DenseCols{A: d.Dense}
}

// Rows returns a row-access view for the SVM solvers.
func (d *Dataset) Rows() RowView {
	if d.CSR != nil {
		return d.CSR
	}
	return sparse.DenseRows{A: d.Dense}
}

// AsCSR returns the data as CSR regardless of storage (densifying if
// needed); used by the distributed partitioners and the LIBSVM writer.
func (d *Dataset) AsCSR() *sparse.CSR {
	if d.CSR != nil {
		return d.CSR
	}
	return sparse.FromDense(d.Dense)
}

// ColView is the column-access interface produced by Cols. It matches
// core.ColMatrix structurally; declared here to avoid importing core.
type ColView interface {
	Dims() (int, int)
	ColNormSq(j int) float64
	ColTMulVec(cols []int, v []float64, dst []float64)
	ColMulAdd(cols []int, coef []float64, v []float64)
	ColGram(cols []int, dst *mat.Dense)
	MulVec(x, y []float64)
}

// RowView is the row-access interface produced by Rows.
type RowView interface {
	Dims() (int, int)
	RowNormSq(i int) float64
	RowMulVec(rows []int, x []float64, dst []float64)
	RowTAxpy(row int, alpha float64, x []float64)
	RowGram(rows []int, dst *mat.Dense)
	MulVec(x, y []float64)
}

// sparseMatrix draws a sparse matrix with ~density·n nonzeros per row at
// uniformly random columns, values N(0,1) — the standard synthetic sparse
// design. Every row gets at least one nonzero so no data point is empty.
func sparseMatrix(r *rng.Stream, m, n int, density float64) *sparse.CSR {
	rowNNZ := int(math.Round(density * float64(n)))
	if rowNNZ < 1 {
		rowNNZ = 1
	}
	if rowNNZ > n {
		rowNNZ = n
	}
	rowPtr := make([]int, m+1)
	colIdx := make([]int, 0, m*rowNNZ)
	vals := make([]float64, 0, m*rowNNZ)
	for i := 0; i < m; i++ {
		cols := r.SampleK(n, rowNNZ)
		insertionSortInts(cols)
		for _, c := range cols {
			colIdx = append(colIdx, c)
			vals = append(vals, r.NormFloat64())
		}
		rowPtr[i+1] = len(vals)
	}
	return &sparse.CSR{M: m, N: n, RowPtr: rowPtr, ColIdx: colIdx, Val: vals}
}

func denseMatrix(r *rng.Stream, m, n int) *mat.Dense {
	d := mat.NewDense(m, n)
	for i := range d.Data {
		d.Data[i] = r.NormFloat64()
	}
	return d
}

// plantSparse returns a k-sparse coefficient vector with N(0,1) entries on
// a random support.
func plantSparse(r *rng.Stream, n, k int) []float64 {
	x := make([]float64, n)
	for _, j := range r.SampleK(n, k) {
		x[j] = r.NormFloat64()
	}
	return x
}

// Regression generates a sparse design with targets b = A·x* + σ·ε for a
// k-sparse planted x*: the proximal least-squares (Lasso) workload.
func Regression(name string, seed uint64, m, n int, density float64, k int, sigma float64) *Dataset {
	r := rng.New(seed)
	a := sparseMatrix(r, m, n, density)
	x := plantSparse(r, n, k)
	b := make([]float64, m)
	a.MulVec(x, b)
	for i := range b {
		b[i] += sigma * r.NormFloat64()
	}
	return &Dataset{Name: name, CSR: a, B: b, XTrue: x}
}

// DenseRegression is Regression with dense storage (epsilon- and leu-like
// workloads).
func DenseRegression(name string, seed uint64, m, n, k int, sigma float64) *Dataset {
	r := rng.New(seed)
	a := denseMatrix(r, m, n)
	x := plantSparse(r, n, k)
	b := make([]float64, m)
	// Row-partitioned and bitwise identical to Gemv, so replica content
	// is unchanged while the big dense replicas (epsilon, gisette)
	// generate at pool speed.
	mat.GemvParallel(1, a, x, 0, b)
	for i := range b {
		b[i] += sigma * r.NormFloat64()
	}
	return &Dataset{Name: name, Dense: a, B: b, XTrue: x}
}

// Classification generates a sparse design with labels
// b_i = sign(A_i·w* + σ·ε): the linear SVM workload. Both classes are
// guaranteed non-empty (flipping the first two labels if necessary).
func Classification(name string, seed uint64, m, n int, density float64, sigma float64) *Dataset {
	r := rng.New(seed)
	a := sparseMatrix(r, m, n, density)
	d := &Dataset{Name: name, CSR: a}
	d.XTrue = planteMargins(r, a.MulVec, m, n, sigma, &d.B)
	return d
}

// DenseClassification is Classification with dense storage (gisette-,
// duke- and leu-like workloads).
func DenseClassification(name string, seed uint64, m, n int, sigma float64) *Dataset {
	r := rng.New(seed)
	a := denseMatrix(r, m, n)
	d := &Dataset{Name: name, Dense: a}
	mul := func(x, y []float64) { mat.GemvParallel(1, a, x, 0, y) }
	d.XTrue = planteMargins(r, mul, m, n, sigma, &d.B)
	return d
}

func planteMargins(r *rng.Stream, mulVec func(x, y []float64), m, n int, sigma float64, bOut *[]float64) []float64 {
	w := make([]float64, n)
	for j := range w {
		w[j] = r.NormFloat64() / math.Sqrt(float64(n))
	}
	margins := make([]float64, m)
	mulVec(w, margins)
	b := make([]float64, m)
	pos := 0
	for i, v := range margins {
		v += sigma * r.NormFloat64()
		if v >= 0 {
			b[i] = 1
			pos++
		} else {
			b[i] = -1
		}
	}
	// Guarantee both classes exist.
	if pos == 0 {
		b[0] = 1
	} else if pos == m {
		b[0] = -1
	}
	*bOut = b
	return w
}

func insertionSortInts(x []int) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

// replicaSpec describes a named dataset replica at unit scale.
type replicaSpec struct {
	m, n    int // scaled-down default dimensions
	origM   int // the original LIBSVM dimensions, for documentation
	origN   int
	density float64 // matches the paper's NNZ% column
	dense   bool
	class   bool // classification (SVM) vs regression (Lasso)
}

// replicas: the paper's Tables II (Lasso) and IV (SVM). Dimensions are
// scaled so a full experiment sweep runs in seconds on one machine; the
// density column is preserved exactly because it, not the raw size,
// drives the computation/communication tradeoff under study.
var replicas = map[string]replicaSpec{
	// Table II (Lasso).
	"url":     {m: 30000, n: 40000, origM: 2396130, origN: 3231961, density: 0.000036},
	"news20":  {m: 8000, n: 31000, origM: 15935, origN: 62061, density: 0.0013},
	"covtype": {m: 58000, n: 54, origM: 581012, origN: 54, density: 0.22},
	"epsilon": {m: 4000, n: 500, origM: 400000, origN: 2000, density: 1, dense: true},
	"leu":     {m: 38, n: 7129, origM: 38, origN: 7129, density: 1, dense: true},
	// Table IV (SVM). The paper's table swaps features/points for the
	// binary sets; these replicas use (points m, features n).
	"w1a":           {m: 300, n: 2477, origM: 300, origN: 2477, density: 0.04, class: true},
	"leu.binary":    {m: 38, n: 7129, origM: 38, origN: 7129, density: 1, dense: true, class: true},
	"duke":          {m: 44, n: 7129, origM: 44, origN: 7129, density: 1, dense: true, class: true},
	"news20.binary": {m: 8000, n: 20000, origM: 19996, origN: 1355191, density: 0.0003, class: true},
	"rcv1.binary":   {m: 10000, n: 24000, origM: 20242, origN: 47236, density: 0.0016, class: true},
	"gisette":       {m: 1000, n: 1200, origM: 6000, origN: 5000, density: 0.99, dense: true, class: true},
}

// ReplicaNames lists the available named replicas in a fixed order.
func ReplicaNames() []string {
	return []string{
		"url", "news20", "covtype", "epsilon", "leu",
		"w1a", "leu.binary", "duke", "news20.binary", "rcv1.binary", "gisette",
	}
}

// ReplicaInfo returns the scaled (m, n) and original (origM, origN) shapes
// plus density of the named replica, for the Table II/IV summaries.
func ReplicaInfo(name string) (m, n, origM, origN int, density float64, err error) {
	spec, ok := replicas[name]
	if !ok {
		return 0, 0, 0, 0, 0, fmt.Errorf("datagen: unknown replica %q", name)
	}
	return spec.m, spec.n, spec.origM, spec.origN, spec.density, nil
}

// Replica generates the named dataset stand-in. scale multiplies both
// dimensions (1 = the scaled defaults above; use smaller values for quick
// tests). Seeds are fixed per name so experiments are reproducible.
func Replica(name string, scale float64, seed uint64) (*Dataset, error) {
	spec, ok := replicas[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown replica %q (have %v)", name, ReplicaNames())
	}
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %v", scale)
	}
	m := maxInt(4, int(float64(spec.m)*scale))
	n := maxInt(4, int(float64(spec.n)*scale))
	k := maxInt(2, n/20) // planted support: 5% of features
	const sigma = 0.1
	switch {
	case spec.class && spec.dense:
		return DenseClassification(name, seed, m, n, sigma), nil
	case spec.class:
		return Classification(name, seed, m, n, spec.density, sigma), nil
	case spec.dense:
		return DenseRegression(name, seed, m, n, k, sigma), nil
	default:
		return Regression(name, seed, m, n, spec.density, k, sigma), nil
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
