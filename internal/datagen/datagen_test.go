package datagen

import (
	"math"
	"testing"

	"saco/internal/mat"
)

func TestRegressionShapeAndPlant(t *testing.T) {
	d := Regression("test", 1, 200, 100, 0.1, 5, 0.01)
	m, n := d.Dims()
	if m != 200 || n != 100 {
		t.Fatalf("dims %dx%d", m, n)
	}
	if len(d.B) != 200 || len(d.XTrue) != 100 {
		t.Fatal("targets or plant missing")
	}
	nnzPlant := 0
	for _, v := range d.XTrue {
		if v != 0 {
			nnzPlant++
		}
	}
	if nnzPlant != 5 {
		t.Fatalf("planted support %d, want 5", nnzPlant)
	}
	// With tiny noise, ||A·x* − b|| must be small relative to ||b||.
	res := make([]float64, m)
	d.CSR.MulVec(d.XTrue, res)
	mat.Axpy(-1, d.B, res)
	if mat.Nrm2(res)/mat.Nrm2(d.B) > 0.2 {
		t.Fatalf("planted model does not explain targets: rel res %v", mat.Nrm2(res)/mat.Nrm2(d.B))
	}
}

func TestDensityMatchesRequest(t *testing.T) {
	d := Regression("test", 2, 500, 400, 0.05, 5, 0)
	got := d.Density()
	if math.Abs(got-0.05) > 0.01 {
		t.Fatalf("density %v, want about 0.05", got)
	}
	// Every row has at least one nonzero.
	for i := 0; i < 500; i++ {
		if d.CSR.RowNNZ(i) == 0 {
			t.Fatalf("row %d empty", i)
		}
	}
}

func TestClassificationLabels(t *testing.T) {
	d := Classification("test", 3, 300, 50, 0.2, 0.1)
	pos, neg := 0, 0
	for _, b := range d.B {
		switch b {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %v not in {-1,+1}", b)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate classes: +%d -%d", pos, neg)
	}
	// The planted separator should classify most points correctly
	// (approximately separable data).
	margins := make([]float64, 300)
	d.CSR.MulVec(d.XTrue, margins)
	correct := 0
	for i, v := range margins {
		if v*d.B[i] > 0 {
			correct++
		}
	}
	if correct < 240 {
		t.Fatalf("planted separator gets only %d/300", correct)
	}
}

func TestDenseVariants(t *testing.T) {
	dr := DenseRegression("test", 4, 50, 30, 3, 0.01)
	if dr.Dense == nil || dr.CSR != nil {
		t.Fatal("DenseRegression not dense")
	}
	if dr.Density() != 1 {
		// Gaussian entries are never exactly zero.
		t.Fatalf("dense density %v", dr.Density())
	}
	dc := DenseClassification("test", 5, 60, 20, 0.05)
	if dc.Dense == nil {
		t.Fatal("DenseClassification not dense")
	}
	if len(dc.B) != 60 {
		t.Fatal("labels missing")
	}
}

func TestViewsAgree(t *testing.T) {
	d := Regression("test", 6, 40, 25, 0.2, 3, 0)
	cols := d.Cols()
	rows := d.Rows()
	x := make([]float64, 25)
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	y1 := make([]float64, 40)
	y2 := make([]float64, 40)
	cols.MulVec(x, y1)
	rows.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("views disagree at %d", i)
		}
	}
}

func TestAsCSRDensify(t *testing.T) {
	d := DenseRegression("test", 7, 10, 8, 2, 0)
	a := d.AsCSR()
	if a.M != 10 || a.N != 8 {
		t.Fatal("AsCSR dims")
	}
	if mat.MaxAbsDiff(a.ToDense(), d.Dense) != 0 {
		t.Fatal("AsCSR lost values")
	}
}

func TestReplicaTable(t *testing.T) {
	for _, name := range ReplicaNames() {
		d, err := Replica(name, 0.02, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, n := d.Dims()
		if m < 4 || n < 4 {
			t.Fatalf("%s: degenerate dims %dx%d", name, m, n)
		}
		if len(d.B) != m {
			t.Fatalf("%s: %d labels for %d rows", name, len(d.B), m)
		}
		wantM, wantN, origM, origN, density, err := ReplicaInfo(name)
		if err != nil {
			t.Fatal(err)
		}
		if wantM <= 0 || wantN <= 0 || origM < wantM || origN < wantN {
			t.Fatalf("%s: replica info inconsistent", name)
		}
		if density <= 0 || density > 1 {
			t.Fatalf("%s: density %v", name, density)
		}
	}
}

func TestReplicaDeterministic(t *testing.T) {
	a, err := Replica("news20", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replica("news20", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatal("replica not deterministic")
	}
	for i := range a.CSR.Val {
		if a.CSR.Val[i] != b.CSR.Val[i] {
			t.Fatal("replica values differ")
		}
	}
}

func TestReplicaErrors(t *testing.T) {
	if _, err := Replica("nope", 1, 1); err == nil {
		t.Fatal("expected unknown-name error")
	}
	if _, err := Replica("url", 0, 1); err == nil {
		t.Fatal("expected bad-scale error")
	}
	if _, _, _, _, _, err := ReplicaInfo("nope"); err == nil {
		t.Fatal("expected unknown-name error")
	}
}

func TestReplicaDensityPreserved(t *testing.T) {
	d, err := Replica("news20", 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Density(); math.Abs(got-0.0013) > 0.0013 {
		t.Fatalf("news20 replica density %v, want about 0.0013", got)
	}
}
