package simd

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Kernels is one complete kernel set. All fields must be non-nil; sets
// that cannot improve on a primitive install the scalar or unrolled
// implementation for it, so dispatch never branches per call.
type Kernels struct {
	name    string
	bitwise bool

	dot         func(x, y []float64) float64
	nrm2sq      func(acc float64, x []float64) float64
	axpy        func(alpha float64, x, y []float64)
	scal        func(alpha float64, x []float64)
	gatherDot   func(acc float64, val []float64, idx []int, x []float64) float64
	gatherAxpy  func(alpha float64, dst, src []float64, idx []int)
	scatterAxpy func(alpha float64, dst, v []float64, idx []int)
	mergeDot    func(acc float64, ia []int, va []float64, ib []int, vb []float64) float64
	spmvRows    func(rowPtr, colIdx []int, val, x, y []float64, lo, hi int)
}

// Name returns the set's dispatch name (scalar, unrolled, avx2,
// reassoc).
func (k *Kernels) Name() string { return k.name }

// Bitwise reports whether every kernel in the set reproduces the scalar
// reference bit for bit. Non-bitwise sets (reassoc) are excluded from
// the deterministic backend matrix and only ever compared under a
// tolerance.
func (k *Kernels) Bitwise() bool { return k.bitwise }

// Dot returns the inner product of x and y in the set's accumulation
// order. len(y) must be at least len(x).
func (k *Kernels) Dot(x, y []float64) float64 {
	if len(y) < len(x) {
		panic(fmt.Sprintf("simd: Dot len(y)=%d < len(x)=%d", len(y), len(x)))
	}
	return k.dot(x, y)
}

// Nrm2Sq returns acc + Σ x[i]², threading the running accumulator the
// out-of-core column kernels carry across row blocks.
func (k *Kernels) Nrm2Sq(acc float64, x []float64) float64 {
	return k.nrm2sq(acc, x)
}

// Axpy computes y[i] += alpha·x[i] over len(x) elements; alpha == 0 is
// a no-op (see the package contract). len(y) must be at least len(x).
func (k *Kernels) Axpy(alpha float64, x, y []float64) {
	if len(y) < len(x) {
		panic(fmt.Sprintf("simd: Axpy len(y)=%d < len(x)=%d", len(y), len(x)))
	}
	if alpha == 0 {
		return
	}
	k.axpy(alpha, x, y)
}

// Scal computes x[i] *= alpha in place.
func (k *Kernels) Scal(alpha float64, x []float64) { k.scal(alpha, x) }

// GatherDot returns acc + Σ val[k]·x[idx[k]] — the sparse-row dot
// product of every CSR/CSC kernel. len(val) must be at least len(idx).
func (k *Kernels) GatherDot(acc float64, val []float64, idx []int, x []float64) float64 {
	if len(val) < len(idx) {
		panic(fmt.Sprintf("simd: GatherDot len(val)=%d < len(idx)=%d", len(val), len(idx)))
	}
	return k.gatherDot(acc, val, idx, x)
}

// GatherAxpy computes dst[k] += alpha·src[idx[k]] — the dense Gram
// update inner loop; alpha == 0 is a no-op. len(dst) must be at least
// len(idx).
func (k *Kernels) GatherAxpy(alpha float64, dst, src []float64, idx []int) {
	if len(dst) < len(idx) {
		panic(fmt.Sprintf("simd: GatherAxpy len(dst)=%d < len(idx)=%d", len(dst), len(idx)))
	}
	if alpha == 0 {
		return
	}
	k.gatherAxpy(alpha, dst, src, idx)
}

// ScatterAxpy computes dst[idx[k]] += alpha·v[k] — the sparse
// row/column update of every CSR/CSC kernel; alpha == 0 is a no-op.
// len(v) must be at least len(idx). Duplicate indices accumulate in
// index order, like the scalar loop.
func (k *Kernels) ScatterAxpy(alpha float64, dst, v []float64, idx []int) {
	if len(v) < len(idx) {
		panic(fmt.Sprintf("simd: ScatterAxpy len(v)=%d < len(idx)=%d", len(v), len(idx)))
	}
	if alpha == 0 {
		return
	}
	k.scatterAxpy(alpha, dst, v, idx)
}

// MergeDot returns acc + the dot product of two sparse vectors given as
// strictly increasing (index, value) pairs, via a sorted two-pointer
// merge — the sparse Gram-entry kernel.
func (k *Kernels) MergeDot(acc float64, ia []int, va []float64, ib []int, vb []float64) float64 {
	if len(va) < len(ia) || len(vb) < len(ib) {
		panic("simd: MergeDot index/value length mismatch")
	}
	return k.mergeDot(acc, ia, va, ib, vb)
}

// SpMVRows computes y[i] = Σ_k val[k]·x[colIdx[k]] over each CSR row i
// in [lo, hi) — the fused gather-multiply-accumulate row loop of
// CSR.MulVec, batched so dispatch costs one indirect call per row
// block rather than one per row.
func (k *Kernels) SpMVRows(rowPtr, colIdx []int, val, x, y []float64, lo, hi int) {
	k.spmvRows(rowPtr, colIdx, val, x, y, lo, hi)
}

// active is the process-wide dispatch target. It is an atomic pointer
// so Use (tests, CLI overrides) is safe against concurrent kernel
// calls; the Load on amd64 is an ordinary MOV.
var active atomic.Pointer[Kernels]

// Active returns the kernel set every package-level wrapper dispatches
// to.
func Active() *Kernels { return active.Load() }

// sets is the registry, in preference order (last bitwise entry wins
// the default).
var sets []*Kernels

// warning records a rejected SACO_KERNELS value for CLIs to surface;
// library init must not panic or write to stderr.
var warning string

// Warning returns a human-readable note when the SACO_KERNELS override
// was ignored (unknown name or unavailable on this CPU), else "".
func Warning() string { return warning }

// Lookup returns the named set if it is registered and available on
// this CPU.
func Lookup(name string) (*Kernels, bool) {
	for _, k := range sets {
		if k.name == name {
			return k, true
		}
	}
	return nil, false
}

// Names lists every available set in registration order.
func Names() []string {
	out := make([]string, len(sets))
	for i, k := range sets {
		out[i] = k.name
	}
	return out
}

// BitwiseNames lists the sets whose kernels are bitwise-identical to
// scalar — the kernel-set dimension of the deterministic backend
// matrix. reassoc is deliberately absent.
func BitwiseNames() []string {
	var out []string
	for _, k := range sets {
		if k.bitwise {
			out = append(out, k.name)
		}
	}
	return out
}

// Use switches the process-wide dispatch to the named set. It is meant
// for init-time overrides, CLIs and tests; kernel calls racing with Use
// see either the old or the new set, never a mix within one call.
func Use(name string) error {
	k, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("simd: unknown or unavailable kernel set %q (have %v)", name, Names())
	}
	active.Store(k)
	return nil
}

func init() {
	sets = []*Kernels{scalarSet, unrolledSet}
	def := unrolledSet
	if avx2Set != nil {
		sets = append(sets, avx2Set)
		def = avx2Set
	}
	sets = append(sets, reassocSet)
	active.Store(def)
	if env := os.Getenv("SACO_KERNELS"); env != "" && env != "auto" {
		if err := Use(env); err != nil {
			warning = fmt.Sprintf("SACO_KERNELS=%q ignored: %v", env, err)
		}
	}
}

// Package-level wrappers: the hot-path entry points internal/mat and
// internal/sparse call. Each costs one atomic pointer load plus one
// indirect call; loops that issue many kernel calls hoist Active()
// once instead.

// Dot dispatches Kernels.Dot on the active set.
func Dot(x, y []float64) float64 { return active.Load().Dot(x, y) }

// Nrm2Sq dispatches Kernels.Nrm2Sq on the active set.
func Nrm2Sq(acc float64, x []float64) float64 { return active.Load().Nrm2Sq(acc, x) }

// Axpy dispatches Kernels.Axpy on the active set.
func Axpy(alpha float64, x, y []float64) { active.Load().Axpy(alpha, x, y) }

// Scal dispatches Kernels.Scal on the active set.
func Scal(alpha float64, x []float64) { active.Load().Scal(alpha, x) }

// GatherDot dispatches Kernels.GatherDot on the active set.
func GatherDot(acc float64, val []float64, idx []int, x []float64) float64 {
	return active.Load().GatherDot(acc, val, idx, x)
}

// GatherAxpy dispatches Kernels.GatherAxpy on the active set.
func GatherAxpy(alpha float64, dst, src []float64, idx []int) {
	active.Load().GatherAxpy(alpha, dst, src, idx)
}

// ScatterAxpy dispatches Kernels.ScatterAxpy on the active set.
func ScatterAxpy(alpha float64, dst, v []float64, idx []int) {
	active.Load().ScatterAxpy(alpha, dst, v, idx)
}

// MergeDot dispatches Kernels.MergeDot on the active set.
func MergeDot(acc float64, ia []int, va []float64, ib []int, vb []float64) float64 {
	return active.Load().MergeDot(acc, ia, va, ib, vb)
}

// SpMVRows dispatches Kernels.SpMVRows on the active set.
func SpMVRows(rowPtr, colIdx []int, val, x, y []float64, lo, hi int) {
	active.Load().SpMVRows(rowPtr, colIdx, val, x, y, lo, hi)
}
