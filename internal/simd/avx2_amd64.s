//go:build amd64

#include "textflag.h"

// AVX2 elementwise kernels. Both loops process 8 float64s per
// iteration in two YMM registers using separate VMULPD + VADDPD —
// deliberately not VFMADD, whose fused single rounding would break
// bitwise parity with the scalar mul-then-add. Lanes never interact,
// so results match the scalar loop bit for bit. Tails run in scalar
// SSE after VZEROUPPER (which clears only bits 128..255, so X0 keeps
// alpha).

// func axpyAVX2(alpha float64, x, y []float64)
// y[i] += alpha * x[i] for i < len(x); caller guarantees len(y) >= len(x).
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	MOVQ y_base+32(FP), DI
	MOVQ CX, BX
	ANDQ $-8, BX
	XORQ AX, AX

axpy_block:
	CMPQ AX, BX
	JGE  axpy_tail_setup
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI)(AX*8), Y1, Y1
	VADDPD  32(DI)(AX*8), Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  axpy_block

axpy_tail_setup:
	VZEROUPPER

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	ADDSD (DI)(AX*8), X1
	MOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  axpy_tail

axpy_done:
	RET

// func scalAVX2(alpha float64, x []float64)
// x[i] *= alpha in place.
TEXT ·scalAVX2(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ x_len+16(FP), CX
	MOVQ CX, BX
	ANDQ $-8, BX
	XORQ AX, AX

scal_block:
	CMPQ AX, BX
	JGE  scal_tail_setup
	VMOVUPD (SI)(AX*8), Y1
	VMOVUPD 32(SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y1, (SI)(AX*8)
	VMOVUPD Y2, 32(SI)(AX*8)
	ADDQ $8, AX
	JMP  scal_block

scal_tail_setup:
	VZEROUPPER

scal_tail:
	CMPQ AX, CX
	JGE  scal_done
	MOVSD (SI)(AX*8), X1
	MULSD X0, X1
	MOVSD X1, (SI)(AX*8)
	INCQ AX
	JMP  scal_tail

scal_done:
	RET
