package simd_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"saco/internal/simd"
)

// Lengths cover 0..3× the widest vector width (8 float64s per AVX2
// iteration pair) plus a few larger sizes, so every tail path from 0
// to 7 leftovers is hit both before and after full blocks.
var testLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 13, 15, 16, 17, 23, 24, 25, 31, 32, 33, 64, 100}

// Offsets shift slices off their allocation start so the asm kernels
// see unaligned bases.
var testOffsets = []int{0, 1, 3}

var testAlphas = []float64{1, -1, 0.5, 2.25, 1e-300, -3.75}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func randIdx(rng *rand.Rand, n, bound int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(bound)
	}
	return idx
}

// offsetCopy returns a copy of s whose backing array starts off
// elements earlier, so &out[0] is not allocation-aligned.
func offsetCopy(s []float64, off int) []float64 {
	buf := make([]float64, len(s)+off)
	out := buf[off:]
	copy(out, s)
	return out
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// bitsEqNaN is bitsEq except that any NaN matches any NaN. NaN payload
// propagation through a+b depends on hardware operand order and is not
// part of the determinism contract; everything else — including the
// sign of zero — is compared exactly.
func bitsEqNaN(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return bitsEq(a, b)
}

func slicesEq(a, b []float64, eq func(x, y float64) bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eq(a[i], b[i]) {
			return false
		}
	}
	return true
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / m
}

func lookup(t *testing.T, name string) *simd.Kernels {
	t.Helper()
	k, ok := simd.Lookup(name)
	if !ok {
		t.Fatalf("kernel set %q not registered (have %v)", name, simd.Names())
	}
	return k
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"scalar", "unrolled", "reassoc"} {
		lookup(t, name)
	}
	if _, ok := simd.Lookup("avx2"); ok != simd.HasAVX2() {
		t.Errorf("avx2 registered=%v but HasAVX2()=%v", ok, simd.HasAVX2())
	}
	for _, name := range simd.BitwiseNames() {
		if name == "reassoc" {
			t.Errorf("reassoc must not appear in BitwiseNames()")
		}
		if !lookup(t, name).Bitwise() {
			t.Errorf("BitwiseNames() lists %q but Bitwise() is false", name)
		}
	}
	if !lookup(t, "scalar").Bitwise() {
		t.Errorf("scalar set must be bitwise")
	}
	if lookup(t, "reassoc").Bitwise() {
		t.Errorf("reassoc set must not claim bitwise")
	}
}

func TestUse(t *testing.T) {
	orig := simd.Active().Name()
	t.Cleanup(func() {
		if err := simd.Use(orig); err != nil {
			t.Fatalf("restoring kernel set %q: %v", orig, err)
		}
	})
	if err := simd.Use("no-such-set"); err == nil {
		t.Fatalf("Use of unknown set did not error")
	}
	if got := simd.Active().Name(); got != orig {
		t.Fatalf("failed Use switched the active set to %q", got)
	}
	for _, name := range simd.Names() {
		if err := simd.Use(name); err != nil {
			t.Fatalf("Use(%q): %v", name, err)
		}
		if got := simd.Active().Name(); got != name {
			t.Fatalf("Active()=%q after Use(%q)", got, name)
		}
	}
}

// TestBitwiseParity is the core tentpole property: on finite data,
// every kernel of every bitwise set reproduces the scalar reference
// bit for bit, across all tail lengths, unaligned bases and alphas.
func TestBitwiseParity(t *testing.T) {
	ref := lookup(t, "scalar")
	for _, name := range simd.BitwiseNames() {
		if name == "scalar" {
			continue
		}
		k := lookup(t, name)
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for _, n := range testLens {
				for _, off := range testOffsets {
					x := offsetCopy(randSlice(rng, n), off)
					y := offsetCopy(randSlice(rng, n), off)

					if got, want := k.Dot(x, y), ref.Dot(x, y); !bitsEq(got, want) {
						t.Fatalf("Dot n=%d off=%d: got %x want %x", n, off, got, want)
					}
					for _, acc := range []float64{0, 1.5, -2.25} {
						if got, want := k.Nrm2Sq(acc, x), ref.Nrm2Sq(acc, x); !bitsEq(got, want) {
							t.Fatalf("Nrm2Sq n=%d off=%d acc=%g: got %x want %x", n, off, acc, got, want)
						}
					}
					for _, alpha := range testAlphas {
						yk, yr := offsetCopy(y, off), offsetCopy(y, off)
						k.Axpy(alpha, x, yk)
						ref.Axpy(alpha, x, yr)
						if !slicesEq(yk, yr, bitsEq) {
							t.Fatalf("Axpy n=%d off=%d alpha=%g mismatch", n, off, alpha)
						}
						xk, xr := offsetCopy(x, off), offsetCopy(x, off)
						k.Scal(alpha, xk)
						ref.Scal(alpha, xr)
						if !slicesEq(xk, xr, bitsEq) {
							t.Fatalf("Scal n=%d off=%d alpha=%g mismatch", n, off, alpha)
						}
					}

					if n > 0 {
						idx := randIdx(rng, n, n)
						val := randSlice(rng, n)
						if got, want := k.GatherDot(0.5, val, idx, x), ref.GatherDot(0.5, val, idx, x); !bitsEq(got, want) {
							t.Fatalf("GatherDot n=%d off=%d: got %x want %x", n, off, got, want)
						}
						dk, dr := offsetCopy(y, off), offsetCopy(y, off)
						k.GatherAxpy(0.5, dk, x, idx)
						ref.GatherAxpy(0.5, dr, x, idx)
						if !slicesEq(dk, dr, bitsEq) {
							t.Fatalf("GatherAxpy n=%d off=%d mismatch", n, off)
						}
						sk, sr := offsetCopy(y, off), offsetCopy(y, off)
						k.ScatterAxpy(-1.5, sk, val, idx)
						ref.ScatterAxpy(-1.5, sr, val, idx)
						if !slicesEq(sk, sr, bitsEq) {
							t.Fatalf("ScatterAxpy n=%d off=%d mismatch", n, off)
						}
					}
				}
			}
		})
	}
}

// TestSpecialValues pushes NaN, ±Inf, ±0 and denormal payloads through
// every set. Bitwise sets must match scalar exactly up to NaN payload
// identity (see bitsEqNaN); reassoc must at least propagate non-finite
// values the same way.
func TestSpecialValues(t *testing.T) {
	ref := lookup(t, "scalar")
	specials := []float64{
		math.NaN(), -math.NaN(), math.Inf(1), math.Inf(-1),
		0, math.Copysign(0, -1), 5e-324, -5e-324, 1.5, -2.5,
	}
	// Cycle the special values through a 19-element vector so blocks and
	// tails both see them.
	mk := func(rot int) []float64 {
		s := make([]float64, 19)
		for i := range s {
			s[i] = specials[(i+rot)%len(specials)]
		}
		return s
	}
	for _, name := range simd.Names() {
		k := lookup(t, name)
		t.Run(name, func(t *testing.T) {
			for rot := 0; rot < len(specials); rot++ {
				x, y := mk(rot), mk(rot+3)
				got, want := k.Dot(x, y), ref.Dot(x, y)
				if !bitsEqNaN(got, want) {
					t.Fatalf("Dot rot=%d: got %x want %x", rot, got, want)
				}
				for _, alpha := range []float64{1, -0.5} {
					yk, yr := append([]float64(nil), y...), append([]float64(nil), y...)
					k.Axpy(alpha, x, yk)
					ref.Axpy(alpha, x, yr)
					if !slicesEq(yk, yr, bitsEqNaN) {
						t.Fatalf("Axpy rot=%d alpha=%g mismatch", rot, alpha)
					}
				}
			}
		})
	}
}

// TestAlphaZeroNoOp pins the unified alpha == 0 contract: the Axpy
// family leaves the destination untouched — exact bits, including NaN
// payloads and -0 — in every kernel set. Scal is deliberately outside
// the family.
func TestAlphaZeroNoOp(t *testing.T) {
	poison := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1.25, -3,
	}
	src := []float64{math.Inf(1), math.NaN(), 2, -4, 8, 16}
	idx := []int{5, 0, 3, 1, 4, 2}
	for _, name := range simd.Names() {
		k := lookup(t, name)
		t.Run(name, func(t *testing.T) {
			check := func(op string, f func(dst []float64)) {
				dst := append([]float64(nil), poison...)
				f(dst)
				for i := range dst {
					if !bitsEq(dst[i], poison[i]) {
						t.Fatalf("%s(alpha=0) modified dst[%d]: %x -> %x",
							op, i, math.Float64bits(poison[i]), math.Float64bits(dst[i]))
					}
				}
			}
			check("Axpy", func(dst []float64) { k.Axpy(0, src, dst) })
			check("GatherAxpy", func(dst []float64) { k.GatherAxpy(0, dst, src, idx) })
			check("ScatterAxpy", func(dst []float64) { k.ScatterAxpy(0, dst, src, idx) })

			// Scal(0, x) really zeroes (and 0·Inf, 0·NaN are NaN).
			x := append([]float64(nil), poison...)
			k.Scal(0, x)
			for i, v := range x {
				orig := poison[i]
				if math.IsNaN(orig) || math.IsInf(orig, 0) {
					if !math.IsNaN(v) {
						t.Fatalf("Scal(0) of %g gave %g, want NaN", orig, v)
					}
				} else if v != 0 {
					t.Fatalf("Scal(0) left x[%d]=%g", i, v)
				}
			}
		})
	}
}

// TestScatterAxpyDuplicates pins accumulate-in-index-order semantics
// for repeated scatter indices across every set.
func TestScatterAxpyDuplicates(t *testing.T) {
	ref := lookup(t, "scalar")
	idx := []int{2, 2, 2, 0, 2, 1, 0, 2, 2}
	v := []float64{1e16, 1, -1e16, 3, 2, 7, -3, 0.5, 0.25}
	for _, name := range simd.Names() {
		k := lookup(t, name)
		dk := make([]float64, 3)
		dr := make([]float64, 3)
		k.ScatterAxpy(1.5, dk, v, idx)
		ref.ScatterAxpy(1.5, dr, v, idx)
		if !slicesEq(dk, dr, bitsEq) {
			t.Errorf("%s: duplicate-index scatter diverged: got %v want %v", name, dk, dr)
		}
	}
}

func TestMergeDot(t *testing.T) {
	ref := lookup(t, "scalar")
	cases := []struct {
		ia []int
		va []float64
		ib []int
		vb []float64
	}{
		{nil, nil, nil, nil},
		{[]int{0, 2, 5}, []float64{1, 2, 3}, []int{1, 3, 6}, []float64{4, 5, 6}},
		{[]int{0, 2, 5}, []float64{1, 2, 3}, []int{0, 2, 5}, []float64{4, 5, 6}},
		{[]int{1, 4, 7, 9}, []float64{1, -2, 3, -4}, []int{4, 9}, []float64{0.5, 0.25}},
	}
	for _, name := range simd.Names() {
		k := lookup(t, name)
		for ci, c := range cases {
			got := k.MergeDot(1.75, c.ia, c.va, c.ib, c.vb)
			want := ref.MergeDot(1.75, c.ia, c.va, c.ib, c.vb)
			if !bitsEq(got, want) {
				t.Errorf("%s case %d: MergeDot got %v want %v", name, ci, got, want)
			}
		}
	}
}

func TestSpMVRows(t *testing.T) {
	ref := lookup(t, "scalar")
	rng := rand.New(rand.NewSource(11))
	const rows, cols = 17, 29
	rowPtr := make([]int, rows+1)
	var colIdx []int
	var val []float64
	for i := 0; i < rows; i++ {
		nnz := rng.Intn(9) // rows with 0..8 entries, including empties
		cs := rng.Perm(cols)[:nnz]
		sort.Ints(cs)
		for _, c := range cs {
			colIdx = append(colIdx, c)
			val = append(val, rng.NormFloat64())
		}
		rowPtr[i+1] = len(colIdx)
	}
	x := randSlice(rng, cols)
	want := make([]float64, rows)
	ref.SpMVRows(rowPtr, colIdx, val, x, want, 0, rows)
	for _, name := range simd.BitwiseNames() {
		k := lookup(t, name)
		got := make([]float64, rows)
		// Split the row range to exercise lo > 0.
		k.SpMVRows(rowPtr, colIdx, val, x, got, 0, 5)
		k.SpMVRows(rowPtr, colIdx, val, x, got, 5, rows)
		if !slicesEq(got, want, bitsEq) {
			t.Errorf("%s: SpMVRows diverged: got %v want %v", name, got, want)
		}
	}
}

// TestReassocTolerance gates the opt-in reassociating set: 1e-12
// relative agreement with scalar on finite data, and NaN propagation
// preserved.
func TestReassocTolerance(t *testing.T) {
	k := lookup(t, "reassoc")
	ref := lookup(t, "scalar")
	rng := rand.New(rand.NewSource(3))
	for _, n := range testLens {
		x, y := randSlice(rng, n), randSlice(rng, n)
		if got, want := k.Dot(x, y), ref.Dot(x, y); relDiff(got, want) > 1e-12 {
			t.Errorf("reassoc Dot n=%d: %v vs %v (rel %g)", n, got, want, relDiff(got, want))
		}
		if got, want := k.Nrm2Sq(0.5, x), ref.Nrm2Sq(0.5, x); relDiff(got, want) > 1e-12 {
			t.Errorf("reassoc Nrm2Sq n=%d: %v vs %v", n, got, want)
		}
		if n > 0 {
			idx := randIdx(rng, n, n)
			got, want := k.GatherDot(0, y, idx, x), ref.GatherDot(0, y, idx, x)
			if relDiff(got, want) > 1e-12 {
				t.Errorf("reassoc GatherDot n=%d: %v vs %v", n, got, want)
			}
		}
	}
	x := randSlice(rng, 13)
	x[9] = math.NaN()
	if got := k.Dot(x, x); !math.IsNaN(got) {
		t.Errorf("reassoc Dot lost NaN: got %v", got)
	}
}

func TestLengthGuards(t *testing.T) {
	k := simd.Active()
	mustPanic := func(op string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s with short companion slice did not panic", op)
			}
		}()
		f()
	}
	x := []float64{1, 2, 3}
	short := []float64{1}
	mustPanic("Dot", func() { k.Dot(x, short) })
	mustPanic("Axpy", func() { k.Axpy(1, x, short) })
	mustPanic("GatherDot", func() { k.GatherDot(0, short, []int{0, 1, 2}, x) })
	mustPanic("ScatterAxpy", func() { k.ScatterAxpy(1, x, short, []int{0, 1, 2}) })
	mustPanic("GatherAxpy", func() { k.GatherAxpy(1, short, x, []int{0, 1, 2}) })
}
