package simd

// The reassoc set: reduction kernels with four independent
// accumulators. Splitting the sum across lanes breaks the loop-carried
// add chain — the ~4-cycle addition latency that bounds every bitwise
// dot variant to one element per chain step — so dot-like kernels run
// several times faster. The price is a reassociated summation order:
//
//	(s0 + s1) + (s2 + s3), each s_l = Σ x[4k+l]·y[4k+l], then the tail
//
// which is still fully deterministic (the order depends only on the
// input length) but NOT bitwise-equal to the scalar fold. This set is
// therefore an explicit opt-in (SACO_KERNELS=reassoc), excluded from
// the deterministic backend matrix, and compared only under a
// 1e-12-relative tolerance in tests. Elementwise kernels carry no
// chain, so they reuse the unrolled (bitwise) implementations.

var reassocSet = &Kernels{
	name:        "reassoc",
	bitwise:     false,
	dot:         reassocDot,
	nrm2sq:      reassocNrm2Sq,
	axpy:        unrolledAxpy,
	scal:        unrolledScal,
	gatherDot:   reassocGatherDot,
	gatherAxpy:  unrolledGatherAxpy,
	scatterAxpy: unrolledScatterAxpy,
	mergeDot:    scalarMergeDot, // merges are inherently sequential
	spmvRows:    reassocSpMVRows,
}

func reassocDot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

func reassocNrm2Sq(acc float64, x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	acc += (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		acc += x[i] * x[i]
	}
	return acc
}

func reassocGatherDot(acc float64, val []float64, idx []int, x []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		s0 += val[k] * x[idx[k]]
		s1 += val[k+1] * x[idx[k+1]]
		s2 += val[k+2] * x[idx[k+2]]
		s3 += val[k+3] * x[idx[k+3]]
	}
	acc += (s0 + s1) + (s2 + s3)
	for ; k < len(idx); k++ {
		acc += val[k] * x[idx[k]]
	}
	return acc
}

func reassocSpMVRows(rowPtr, colIdx []int, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		p, end := rowPtr[i], rowPtr[i+1]
		y[i] = reassocGatherDot(0, val[p:end], colIdx[p:end], x)
	}
}
