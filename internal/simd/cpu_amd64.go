//go:build amd64

package simd

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0). Only called after
// CPUID reports OSXSAVE. Implemented in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

// detectAVX2 reports whether both the CPU and the OS support AVX2:
// the CPU must advertise AVX (leaf 1 ECX bit 28), OSXSAVE (bit 27) and
// AVX2 (leaf 7 EBX bit 5), and the OS must have enabled XMM and YMM
// state saving (XCR0 bits 1 and 2). This is the standard Intel-manual
// detection sequence; without the XCR0 check, YMM registers could be
// corrupted across context switches on a non-AVX-aware kernel.
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}

// hasAVX2 is fixed at startup; kernel dispatch never re-probes.
var hasAVX2 = detectAVX2()

// HasAVX2 reports whether the avx2 kernel set is available (CPU and OS
// support), for capability reporting in benchmarks and CLIs.
func HasAVX2() bool { return hasAVX2 }
