package simd

// The scalar set: the repository's original pure-Go loops, moved here
// verbatim from internal/mat and internal/sparse. These bodies are the
// bitwise reference — every other set's property tests compare against
// them, and the deterministic backend matrix is defined by their
// summation orders. Do not "improve" them.

var scalarSet = &Kernels{
	name:        "scalar",
	bitwise:     true,
	dot:         scalarDot,
	nrm2sq:      scalarNrm2Sq,
	axpy:        scalarAxpy,
	scal:        scalarScal,
	gatherDot:   scalarGatherDot,
	gatherAxpy:  scalarGatherAxpy,
	scatterAxpy: scalarScatterAxpy,
	mergeDot:    scalarMergeDot,
	spmvRows:    scalarSpMVRows,
}

func scalarDot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func scalarNrm2Sq(acc float64, x []float64) float64 {
	for _, v := range x {
		acc += v * v
	}
	return acc
}

func scalarAxpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

func scalarScal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

func scalarGatherDot(acc float64, val []float64, idx []int, x []float64) float64 {
	for k, j := range idx {
		acc += val[k] * x[j]
	}
	return acc
}

func scalarGatherAxpy(alpha float64, dst, src []float64, idx []int) {
	for k, j := range idx {
		dst[k] += alpha * src[j]
	}
}

func scalarScatterAxpy(alpha float64, dst, v []float64, idx []int) {
	for k, j := range idx {
		dst[j] += alpha * v[k]
	}
}

func scalarMergeDot(acc float64, ia []int, va []float64, ib []int, vb []float64) float64 {
	p, q := 0, 0
	for p < len(ia) && q < len(ib) {
		switch cp, cq := ia[p], ib[q]; {
		case cp == cq:
			acc += va[p] * vb[q]
			p++
			q++
		case cp < cq:
			p++
		default:
			q++
		}
	}
	return acc
}

func scalarSpMVRows(rowPtr, colIdx []int, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			s += val[k] * x[colIdx[k]]
		}
		y[i] = s
	}
}
