package simd_test

import (
	"encoding/binary"
	"math"
	"testing"

	"saco/internal/simd"
)

// FuzzKernels drives every kernel set with arbitrary bit patterns —
// including NaNs, infinities, denormals and -0 that byte-level fuzzing
// produces for free — and checks the cross-set contracts: bitwise sets
// match scalar (up to NaN payload identity), and the reassociating set
// stays within 1e-12 relative on finite data.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{}, 0.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1.5)
	big := make([]byte, 61*8)
	for i := range big {
		big[i] = byte(i * 37)
	}
	f.Add(big, -0.25)
	f.Fuzz(func(t *testing.T, data []byte, alpha float64) {
		n := len(data) / 16
		if n > 256 {
			n = 256
		}
		x := make([]float64, n)
		y := make([]float64, n)
		idx := make([]int, n)
		finite := math.IsInf(alpha, 0) == false && !math.IsNaN(alpha)
		for i := 0; i < n; i++ {
			x[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			y[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			idx[i] = int(data[i*16]) % n
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
				finite = false
			}
		}
		ref, _ := simd.Lookup("scalar")
		wantDot := ref.Dot(x, y)
		wantN2 := ref.Nrm2Sq(alpha, x)
		wantAxpy := append([]float64(nil), y...)
		ref.Axpy(alpha, x, wantAxpy)
		var wantGD float64
		wantScat := append([]float64(nil), y...)
		if n > 0 {
			wantGD = ref.GatherDot(alpha, y, idx, x)
			ref.ScatterAxpy(alpha, wantScat, x, idx)
		}
		for _, name := range simd.Names() {
			k, _ := simd.Lookup(name)
			if k.Bitwise() {
				if got := k.Dot(x, y); !bitsEqNaN(got, wantDot) {
					t.Fatalf("%s Dot: %x vs %x", name, got, wantDot)
				}
				if got := k.Nrm2Sq(alpha, x); !bitsEqNaN(got, wantN2) {
					t.Fatalf("%s Nrm2Sq: %x vs %x", name, got, wantN2)
				}
				ya := append([]float64(nil), y...)
				k.Axpy(alpha, x, ya)
				if !slicesEq(ya, wantAxpy, bitsEqNaN) {
					t.Fatalf("%s Axpy mismatch", name)
				}
				if n > 0 {
					if got := k.GatherDot(alpha, y, idx, x); !bitsEqNaN(got, wantGD) {
						t.Fatalf("%s GatherDot: %x vs %x", name, got, wantGD)
					}
					sc := append([]float64(nil), y...)
					k.ScatterAxpy(alpha, sc, x, idx)
					if !slicesEq(sc, wantScat, bitsEqNaN) {
						t.Fatalf("%s ScatterAxpy mismatch", name)
					}
				}
			} else if finite {
				if got := k.Dot(x, y); relDiff(got, wantDot) > 1e-12 {
					t.Fatalf("%s Dot off by %g: %v vs %v", name, relDiff(got, wantDot), got, wantDot)
				}
			}
		}
	})
}
