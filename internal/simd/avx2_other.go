//go:build !amd64

package simd

// No AVX2 on this architecture; dispatch falls back to unrolled.
var avx2Set *Kernels
