// Package simd is the kernel-dispatch layer for the repository's hot
// floating-point primitives: the dense dot/axpy pair, the squared norm,
// the gather-dot and scatter-axpy at the heart of every CSR/CSC kernel,
// the sorted-merge dot of the Gram assembly, and a fused
// gather-multiply-accumulate SpMV row loop.
//
// Every primitive exists in several complete *kernel sets*:
//
//   - scalar: the original pure-Go loops, unchanged. This set is the
//     bitwise reference every other set is tested against.
//   - unrolled: 4× unrolled single-accumulator Go. The accumulation
//     order is identical to scalar — unrolling only widens the window
//     the CPU can schedule loads and multiplies in — so results are
//     bitwise identical.
//   - avx2 (amd64 with AVX2 only): Go-assembly vector kernels for the
//     contiguous elementwise primitives (axpy, scal), which perform one
//     multiply and one add per element and therefore round exactly like
//     the scalar loop (no FMA is used). Reductions keep the unrolled
//     code: any lane-parallel sum would reassociate, which is exactly
//     what the reassoc set is for.
//   - reassoc: multi-accumulator reductions that break the loop-carried
//     add chain for a large speedup on dot-like kernels, at the price
//     of a reassociated (different, still deterministic) summation
//     order. This set is an explicit opt-in: it is excluded from the
//     bitwise backend matrix and its results are tolerance-gated
//     (1e-12-relative) in tests, never asserted bitwise.
//
// The active set is chosen once at init: the best bitwise set the CPU
// supports (avx2 on capable amd64 hardware, unrolled elsewhere), or the
// set named by the SACO_KERNELS environment variable
// (scalar|unrolled|avx2|reassoc). Tests and the parity harness switch
// sets with Use.
//
// # The alpha == 0 contract
//
// Every kernel in the Axpy family — Axpy, ScatterAxpy, GatherAxpy, and
// the sparse row/column kernels built on them — treats alpha == 0 as a
// no-op: the destination is returned untouched, bit for bit. The
// alternative (computing y[i] += 0*x[i]) would normalize -0 to +0 and
// turn Inf/NaN payloads in x into NaNs in y, and historically the
// codebase disagreed with itself kernel by kernel. The no-op semantic
// is enforced centrally in this package's wrappers and asserted for
// every variant (plain, atomic, dense, sparse) by the kernel property
// tests. Scal is not in the family: Scal(0, x) really does zero x
// (modulo 0·NaN = NaN, 0·Inf = NaN), matching the BLAS convention.
package simd
