package simd_test

import (
	"math/rand"
	"testing"

	"saco/internal/simd"
)

// Per-set microbenchmarks for the hot kernels. cmd/sabench is the
// checked-in trajectory and CI delta gate; these exist for quick ad-hoc
// `go test -bench` comparisons and stay cheap at -benchtime=1x.

const benchN = 4096

func benchVecs() (x, y []float64) {
	rng := rand.New(rand.NewSource(1))
	x = make([]float64, benchN)
	y = make([]float64, benchN)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	return
}

func perSet(b *testing.B, f func(b *testing.B, k *simd.Kernels)) {
	for _, name := range simd.Names() {
		k, _ := simd.Lookup(name)
		b.Run(name, func(b *testing.B) { f(b, k) })
	}
}

var sinkF float64

func BenchmarkDot(b *testing.B) {
	x, y := benchVecs()
	perSet(b, func(b *testing.B, k *simd.Kernels) {
		b.SetBytes(benchN * 16)
		for i := 0; i < b.N; i++ {
			sinkF = k.Dot(x, y)
		}
	})
}

func BenchmarkAxpy(b *testing.B) {
	x, y := benchVecs()
	perSet(b, func(b *testing.B, k *simd.Kernels) {
		b.SetBytes(benchN * 24)
		for i := 0; i < b.N; i++ {
			k.Axpy(1.0000001, x, y)
		}
	})
}

func BenchmarkScal(b *testing.B) {
	x, _ := benchVecs()
	perSet(b, func(b *testing.B, k *simd.Kernels) {
		b.SetBytes(benchN * 16)
		for i := 0; i < b.N; i++ {
			k.Scal(0.9999999, x)
		}
	})
}

func BenchmarkGatherDot(b *testing.B) {
	x, y := benchVecs()
	rng := rand.New(rand.NewSource(2))
	idx := make([]int, benchN)
	for i := range idx {
		idx[i] = rng.Intn(benchN)
	}
	perSet(b, func(b *testing.B, k *simd.Kernels) {
		for i := 0; i < b.N; i++ {
			sinkF = k.GatherDot(0, y, idx, x)
		}
	})
}
