//go:build !amd64

package simd

// HasAVX2 reports whether the avx2 kernel set is available; never on
// non-amd64 architectures. (A NEON set for arm64 is the natural next
// addition and would slot in exactly like avx2_amd64.go.)
func HasAVX2() bool { return false }
