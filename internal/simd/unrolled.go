package simd

// The unrolled set: 4×-unrolled Go with a single accumulator. Each
// reduction performs its additions in exactly the scalar order — the
// unroll only removes loop-counter overhead and lets the CPU's
// out-of-order window hide load and multiply latency behind the
// loop-carried add chain — so every kernel is bitwise identical to
// scalar. The elementwise kernels (axpy, scal, gatherAxpy,
// scatterAxpy) carry no chain at all and unroll for pure throughput.

var unrolledSet = &Kernels{
	name:        "unrolled",
	bitwise:     true,
	dot:         unrolledDot,
	nrm2sq:      unrolledNrm2Sq,
	axpy:        unrolledAxpy,
	scal:        unrolledScal,
	gatherDot:   unrolledGatherDot,
	gatherAxpy:  unrolledGatherAxpy,
	scatterAxpy: unrolledScatterAxpy,
	mergeDot:    scalarMergeDot, // data-dependent merge: no lanes to unroll
	spmvRows:    unrolledSpMVRows,
}

func unrolledDot(x, y []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

func unrolledNrm2Sq(acc float64, x []float64) float64 {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		acc += x[i] * x[i]
		acc += x[i+1] * x[i+1]
		acc += x[i+2] * x[i+2]
		acc += x[i+3] * x[i+3]
	}
	for ; i < len(x); i++ {
		acc += x[i] * x[i]
	}
	return acc
}

func unrolledAxpy(alpha float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

func unrolledScal(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x[i] *= alpha
		x[i+1] *= alpha
		x[i+2] *= alpha
		x[i+3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

func unrolledGatherDot(acc float64, val []float64, idx []int, x []float64) float64 {
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		acc += val[k] * x[idx[k]]
		acc += val[k+1] * x[idx[k+1]]
		acc += val[k+2] * x[idx[k+2]]
		acc += val[k+3] * x[idx[k+3]]
	}
	for ; k < len(idx); k++ {
		acc += val[k] * x[idx[k]]
	}
	return acc
}

func unrolledGatherAxpy(alpha float64, dst, src []float64, idx []int) {
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		dst[k] += alpha * src[idx[k]]
		dst[k+1] += alpha * src[idx[k+1]]
		dst[k+2] += alpha * src[idx[k+2]]
		dst[k+3] += alpha * src[idx[k+3]]
	}
	for ; k < len(idx); k++ {
		dst[k] += alpha * src[idx[k]]
	}
}

func unrolledScatterAxpy(alpha float64, dst, v []float64, idx []int) {
	// Duplicate indices must accumulate in index order, and the unrolled
	// statements execute in exactly that order, so the semantics match
	// the scalar loop even on repeated idx entries.
	k := 0
	for ; k+4 <= len(idx); k += 4 {
		dst[idx[k]] += alpha * v[k]
		dst[idx[k+1]] += alpha * v[k+1]
		dst[idx[k+2]] += alpha * v[k+2]
		dst[idx[k+3]] += alpha * v[k+3]
	}
	for ; k < len(idx); k++ {
		dst[idx[k]] += alpha * v[k]
	}
}

func unrolledSpMVRows(rowPtr, colIdx []int, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		p, end := rowPtr[i], rowPtr[i+1]
		y[i] = unrolledGatherDot(0, val[p:end], colIdx[p:end], x)
	}
}
