//go:build amd64

package simd

// The avx2 set: hand-written AVX2 assembly for the elementwise
// contiguous kernels (axpy, scal). These vectorize bitwise-safely: each
// element undergoes exactly one multiply and one add (VMULPD then
// VADDPD — never VFMADD, whose single rounding would differ from the
// scalar mul-then-add), and lanes never interact, so the result is
// identical to the scalar loop bit for bit. Reduction kernels are
// bound by their loop-carried add chain and cannot be vectorized
// without reassociating, so they inherit the unrolled (bitwise)
// implementations; the reassoc set is the opt-in for that trade.
//
// The gather/scatter/merge kernels stay in Go on purpose: assembly
// loops cannot bounds-check idx against x/dst, and the indexed loads
// dominate their runtime anyway.

// axpyAVX2 computes y[i] += alpha·x[i] over len(x) elements. Caller
// guarantees len(y) >= len(x) and alpha != 0.
func axpyAVX2(alpha float64, x, y []float64)

// scalAVX2 computes x[i] *= alpha in place.
func scalAVX2(alpha float64, x []float64)

func newAVX2Set() *Kernels {
	if !hasAVX2 {
		return nil
	}
	k := *unrolledSet
	k.name = "avx2"
	k.axpy = axpyAVX2
	k.scal = scalAVX2
	return &k
}

var avx2Set = newAVX2Set()
