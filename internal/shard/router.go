package shard

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"saco/internal/metrics"
)

// ForwardedHeader marks a request that has already been routed once.
// Its value is the advertised address of the forwarding replica. A
// replica receiving a marked request never forwards again — it either
// owns the key and serves, or answers 421 Misdirected Request — so a
// stale ring can cost one extra hop, never a loop.
const ForwardedHeader = "X-Saco-Forwarded"

// errMisdirected reports a peer that refused a forward because it does
// not consider itself the owner: the two replicas' rings disagree,
// which the retry path treats like a ring change.
var errMisdirected = errors.New("shard: peer answered 421 (membership disagreement)")

// Router fronts a replica's HTTP surface: it resolves each key against
// the table's current ring and either serves locally or proxies to the
// owning replica over loopback HTTP.
type Router struct {
	// Table is the membership source; Current() is loaded per request.
	Table *Table
	// Self is this replica's advertised host:port — the identity that
	// must appear in the peer list.
	Self string
	// Client performs forwards; nil uses a 10-second-timeout default.
	Client *http.Client

	// Optional wiring into the metrics subsystem; nil counters no-op.
	Forwards      *metrics.Counter // forwards attempted
	ForwardErrors *metrics.Counter // forwards that failed outright
	Retries       *metrics.Counter // retry-once attempts after a ring change
}

// client returns the forward client.
func (rt *Router) client() *http.Client {
	if rt.Client != nil {
		return rt.Client
	}
	return defaultClient
}

var defaultClient = &http.Client{Timeout: 10 * time.Second}

// Forward replays r (method, path, query, content type) with body to
// the owner replica and returns its response; the caller owns closing
// the response body. A 421 reply returns errMisdirected — the peer
// disowns the key, so the caller should re-resolve. The error return is
// part of the routing contract (commerr enforces it is never dropped):
// a swallowed forward failure would silently black-hole a request.
func (rt *Router) Forward(r *http.Request, owner string, body []byte) (*http.Response, error) {
	rt.Forwards.Inc()
	url := "http://" + owner + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		rt.ForwardErrors.Inc()
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(ForwardedHeader, rt.Self)
	resp, err := rt.client().Do(req)
	if err != nil {
		rt.ForwardErrors.Inc()
		return nil, err
	}
	if resp.StatusCode == http.StatusMisdirectedRequest {
		resp.Body.Close() //saco:nolint commerr net/http response body close on a discarded reply is best-effort
		rt.ForwardErrors.Inc()
		return nil, errMisdirected
	}
	return resp, nil
}

// Dispatch routes one request for key: serve locally when this replica
// owns it, otherwise forward to the owner, retrying once when the ring
// changed underneath the first attempt (a swap bumped the generation,
// ownership re-resolves elsewhere, or the peer answered 421). body is
// the already-read request body; local scores the request on this
// replica.
func (rt *Router) Dispatch(w http.ResponseWriter, r *http.Request, key string, body []byte, local func()) {
	ring := rt.Table.Current()
	owner := ring.Owner(key)
	if owner == "" {
		http.Error(w, "shard: empty cluster (no members)", http.StatusServiceUnavailable)
		return
	}
	if owner == rt.Self {
		local()
		return
	}
	if from := r.Header.Get(ForwardedHeader); from != "" {
		// Already routed once by `from`; refusing (rather than hopping
		// again) bounds every request to two hops and tells the sender
		// its ring is stale.
		http.Error(w, fmt.Sprintf("shard: %s is not the owner of %q (forwarded by %s)", rt.Self, key, from),
			http.StatusMisdirectedRequest)
		return
	}
	resp, err := rt.Forward(r, owner, body)
	if err == nil {
		relay(w, resp)
		return
	}
	// Retry once iff the ring moved: a new generation, a new owner, or
	// a peer that disowned the key. The re-resolved owner may be the
	// same replica — after a 421 or a generation bump it can have caught
	// up with the membership we see — so the retry never conditions on
	// the owner changing. Retries counts attempted retries only: it is
	// bumped immediately before a local re-serve or a second forward,
	// never when the retry is skipped.
	ring2 := rt.Table.Current()
	owner2 := ring2.Owner(key)
	if ring2.Gen() != ring.Gen() || owner2 != owner || errors.Is(err, errMisdirected) {
		if owner2 == rt.Self {
			rt.Retries.Inc()
			local()
			return
		}
		if owner2 != "" {
			rt.Retries.Inc()
			resp, err2 := rt.Forward(r, owner2, body)
			if err2 == nil {
				relay(w, resp)
				return
			}
			err = err2
		}
	}
	http.Error(w, fmt.Sprintf("shard: forward of %q to %s failed: %v", key, owner, err), http.StatusBadGateway)
}

// relay copies a forwarded response through to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close() //saco:nolint commerr read-only body; a short relay already surfaced to the client
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone mid-relay = nothing to do
}
