package shard

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"saco/internal/metrics"
)

// TestRingDeterministic: the ring is a pure function of the member SET —
// order and duplicates must not change ownership.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 32)
	b := NewRing([]string{"n3", "n1", "n2", "n2", ""}, 32)
	if got, want := fmt.Sprint(a.Members()), fmt.Sprint(b.Members()); got != want {
		t.Fatalf("members %s != %s", got, want)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("model-%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owner %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingStability: removing one member must only remap the keys that
// member owned; every other key keeps its owner. This is the property
// that makes rebalancing cheap.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3", "n4"}, DefaultVNodes)
	without := NewRing([]string{"n1", "n2", "n4"}, DefaultVNodes)
	moved := 0
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("model-%d", i)
		was, now := full.Owner(k), without.Owner(k)
		if was == "n3" {
			if now == "n3" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %q -> %q though its owner stayed", k, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("expected some keys to have been owned by n3")
	}
}

// TestRingBalance: vnodes keep ownership roughly even — no member of a
// 4-node ring should own more than half of a large key space.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"}, DefaultVNodes)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("model-%d", i))]++
	}
	for m, c := range counts {
		if c > keys/2 {
			t.Fatalf("member %s owns %d/%d keys — distribution collapsed", m, c, keys)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members own keys", len(counts))
	}
}

// TestRingEmpty: nil and empty rings own nothing.
func TestRingEmpty(t *testing.T) {
	var nilRing *Ring
	if nilRing.Owner("k") != "" || nilRing.Size() != 0 || nilRing.Gen() != 0 {
		t.Fatal("nil ring must be inert")
	}
	if NewRing(nil, 8).Owner("k") != "" {
		t.Fatal("empty ring must own nothing")
	}
}

// TestTableGenerations: each Set installs a new ring with a strictly
// increasing generation, visible through Current.
func TestTableGenerations(t *testing.T) {
	tb := NewTable([]string{"a", "b"}, 16)
	r1 := tb.Current()
	if r1.Gen() != 1 || r1.Size() != 2 {
		t.Fatalf("gen %d size %d after NewTable", r1.Gen(), r1.Size())
	}
	r2 := tb.Set([]string{"a", "b", "c"})
	if r2.Gen() != 2 || tb.Current() != r2 {
		t.Fatalf("second ring gen %d, current == new: %v", r2.Gen(), tb.Current() == r2)
	}
	if r1.Gen() == r2.Gen() {
		t.Fatal("generations must differ across swaps")
	}
}

// echoServer runs an httptest server whose listen address doubles as
// its member name, replying with its own tag so tests can see who
// served a request.
func echoServer(t *testing.T, tag string, hook func(w http.ResponseWriter, r *http.Request) bool) (addr string, close func()) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hook != nil && hook(w, r) {
			return
		}
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s:%s:%s", tag, r.URL.Query().Get("model"), body)
	}))
	return strings.TrimPrefix(srv.URL, "http://"), srv.Close
}

// keyOwnedBy scans for a key the given member owns on ring r (and, if
// alsoOn is non-nil, that alsoOwner owns on alsoOn).
func keyOwnedBy(t *testing.T, r *Ring, member string, alsoOn *Ring, alsoOwner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.Owner(k) != member {
			continue
		}
		if alsoOn != nil && alsoOn.Owner(k) != alsoOwner {
			continue
		}
		return k
	}
	t.Fatalf("no key owned by %s found", member)
	return ""
}

// TestRouterLocalAndForward: keys this replica owns run the local
// closure; keys a peer owns are proxied with the forwarded marker and
// the peer's reply is relayed verbatim.
func TestRouterLocalAndForward(t *testing.T) {
	peer, stop := echoServer(t, "peer", nil)
	defer stop()
	self := "127.0.0.1:1" // never dialed: local paths short-circuit
	tb := NewTable([]string{self, peer}, 16)
	reg := metrics.NewRegistry()
	rt := &Router{Table: tb, Self: self, Forwards: reg.Counter("fwd", "h")}

	localKey := keyOwnedBy(t, tb.Current(), self, nil, "")
	remoteKey := keyOwnedBy(t, tb.Current(), peer, nil, "")

	ran := false
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+localKey, nil)
	rt.Dispatch(rec, req, localKey, nil, func() { ran = true })
	if !ran {
		t.Fatal("locally owned key must run the local closure")
	}
	if rt.Forwards.Value() != 0 {
		t.Fatal("local dispatch must not forward")
	}

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/predict?model="+remoteKey, strings.NewReader("rows"))
	rt.Dispatch(rec, req, remoteKey, []byte("rows"), func() { t.Fatal("remote key ran locally") })
	if rec.Code != http.StatusOK {
		t.Fatalf("forward status %d: %s", rec.Code, rec.Body)
	}
	if got, want := rec.Body.String(), "peer:"+remoteKey+":rows"; got != want {
		t.Fatalf("relayed body %q, want %q", got, want)
	}
	if rt.Forwards.Value() != 1 {
		t.Fatalf("forwards counter %d, want 1", rt.Forwards.Value())
	}
}

// TestRouterLoopGuard: a request already carrying the forwarded marker
// is never forwarded again — a non-owner answers 421.
func TestRouterLoopGuard(t *testing.T) {
	tb := NewTable([]string{"127.0.0.1:1", "127.0.0.1:2"}, 16)
	rt := &Router{Table: tb, Self: "127.0.0.1:1"}
	key := keyOwnedBy(t, tb.Current(), "127.0.0.1:2", nil, "")
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+key, nil)
	req.Header.Set(ForwardedHeader, "127.0.0.1:2")
	rt.Dispatch(rec, req, key, nil, func() { t.Fatal("non-owner must not serve") })
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("status %d, want 421", rec.Code)
	}
}

// TestRouterEmptyCluster: no members → 503, not a panic.
func TestRouterEmptyCluster(t *testing.T) {
	rt := &Router{Table: NewTable(nil, 16), Self: "x"}
	rec := httptest.NewRecorder()
	rt.Dispatch(rec, httptest.NewRequest("GET", "/predict", nil), "k", nil, func() { t.Fatal("no local serve") })
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

// TestRouterRetryOnRingChange: the first owner answers 421 (its ring
// disagrees) and the membership changes underneath the request; the
// router re-resolves and retries exactly once, landing on the new
// owner.
func TestRouterRetryOnRingChange(t *testing.T) {
	var tb *Table
	good, stopGood := echoServer(t, "good", nil)
	defer stopGood()
	var stale string
	staleHits := 0
	stale, stopStale := echoServer(t, "stale", func(w http.ResponseWriter, r *http.Request) bool {
		staleHits++
		// Membership moves while the first forward is in flight.
		tb.Set([]string{"self.invalid:1", good})
		http.Error(w, "not mine", http.StatusMisdirectedRequest)
		return true
	})
	defer stopStale()

	self := "self.invalid:1"
	tb = NewTable([]string{self, stale, good}, 16)
	ring1 := tb.Current()
	ring2 := NewRing([]string{self, good}, 16)
	// A key owned by the stale peer now and by the good peer after the
	// change, so the retry must hop to good.
	key := keyOwnedBy(t, ring1, stale, ring2, good)

	reg := metrics.NewRegistry()
	rt := &Router{Table: tb, Self: self, Retries: reg.Counter("retries", "h")}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+key, strings.NewReader("x"))
	rt.Dispatch(rec, req, key, []byte("x"), func() { t.Fatal("must not serve locally") })
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after retry: %s", rec.Code, rec.Body)
	}
	if !strings.HasPrefix(rec.Body.String(), "good:") {
		t.Fatalf("served by %q, want the new owner", rec.Body)
	}
	if staleHits != 1 || rt.Retries.Value() != 1 {
		t.Fatalf("staleHits=%d retries=%d, want exactly one each", staleHits, rt.Retries.Value())
	}
}

// TestRouterRetryToLocal: when the ring change makes this replica the
// owner, the retry serves locally instead of forwarding.
func TestRouterRetryToLocal(t *testing.T) {
	var tb *Table
	self := "self.invalid:1"
	var stale string
	stale, stopStale := echoServer(t, "stale", func(w http.ResponseWriter, r *http.Request) bool {
		tb.Set([]string{self})
		http.Error(w, "not mine", http.StatusMisdirectedRequest)
		return true
	})
	defer stopStale()
	tb = NewTable([]string{self, stale}, 16)
	key := keyOwnedBy(t, tb.Current(), stale, nil, "")

	rt := &Router{Table: tb, Self: self}
	ran := false
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+key, nil)
	rt.Dispatch(rec, req, key, nil, func() { ran = true })
	if !ran {
		t.Fatal("retry must serve locally once self owns the key")
	}
}

// TestRouterDeadPeer: an unreachable owner with no ring change is a
// 502, reported, not hung.
func TestRouterDeadPeer(t *testing.T) {
	dead := "127.0.0.1:1" // reserved port: connection refused
	self := "self.invalid:9"
	tb := NewTable([]string{self, dead}, 16)
	reg := metrics.NewRegistry()
	rt := &Router{Table: tb, Self: self, ForwardErrors: reg.Counter("errs", "h")}
	key := keyOwnedBy(t, tb.Current(), dead, nil, "")
	rec := httptest.NewRecorder()
	rt.Dispatch(rec, httptest.NewRequest("POST", "/predict", nil), key, nil, func() { t.Fatal("no local serve") })
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", rec.Code)
	}
	if rt.ForwardErrors.Value() == 0 {
		t.Fatal("forward error must be counted")
	}
}
