package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the vnode count per member when a Table is built
// with vnodes <= 0. 64 points per member keeps the largest/smallest
// ownership arc within a few percent of even for small clusters.
const DefaultVNodes = 64

// point is one vnode on the hash circle.
type point struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set. Build
// with NewRing, share freely — all methods are read-only.
type Ring struct {
	members []string // sorted, unique
	vnodes  int
	gen     uint64 // set by the owning Table; 0 for a bare ring
	points  []point
}

// NewRing builds a ring of vnodes points per member. Duplicate member
// names collapse; order does not matter — the ring depends only on the
// member set, so every replica given the same static peer list computes
// the same ownership, with no coordination.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" {
			uniq[m] = true
		}
	}
	sorted := make([]string, 0, len(uniq))
	for m := range uniq {
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)

	r := &Ring{members: sorted, vnodes: vnodes}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	// Ties broken by member name so the ring is a pure function of the
	// member set (map iteration above never leaks: sorted first).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// hash64 is FNV-1a followed by a 64-bit avalanche finalizer
// (MurmurHash3's fmix64). Raw FNV-1a leaves near-identical high bits
// for short strings sharing a prefix — "model-0".."model-9" would all
// land on one arc of the circle — so the finalizer scatters every bit
// before placement. Both stages are constant-defined and dependency
// free, so the mapping is stable across runs, architectures, and
// replicas built from the same peer list.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s)) //nolint:errcheck // hash.Hash.Write never errors
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the member owning key: the first vnode clockwise from
// the key's hash (wrapping past the top). Empty rings own nothing and
// return "".
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Owns reports whether member owns key on this ring.
func (r *Ring) Owns(member, key string) bool { return r.Owner(key) == member }

// Members returns the sorted member set (a copy).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// Size returns the member count.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// VNodes returns the per-member vnode count.
func (r *Ring) VNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}

// Gen returns the ring's generation: 0 for a bare NewRing ring, the
// table's swap sequence number once installed. A router snapshots the
// generation before a forward and re-resolves when it changed — the
// cheap "did membership move underneath me" test.
func (r *Ring) Gen() uint64 {
	if r == nil {
		return 0
	}
	return r.gen
}

// String renders the ring for logs and /cluster status.
func (r *Ring) String() string {
	if r == nil {
		return "ring(nil)"
	}
	return fmt.Sprintf("ring(gen %d, %d members × %d vnodes)", r.gen, len(r.members), r.vnodes)
}
