// Retry-matrix tests for Router.Dispatch: every cell pins down when the
// one retry happens, who it goes to, and what the Retries counter reads
// afterwards (attempted retries only).
package shard

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"saco/internal/metrics"
)

func retryRouter(tb_ *Table) *Router {
	reg := metrics.NewRegistry()
	return &Router{
		Table: tb_, Self: "self.invalid:1",
		Forwards:      reg.Counter("fwd", "h"),
		ForwardErrors: reg.Counter("fwderr", "h"),
		Retries:       reg.Counter("retry", "h"),
	}
}

// TestRouterRetry421SameOwner: the owner answers 421 once (its ring
// lagged) and accepts the replay — membership never changes on our
// side, so the re-resolved owner is the SAME replica. The router must
// still retry (the peer can have caught up between the two attempts)
// and succeed, with exactly one retry counted and two hits on the peer.
func TestRouterRetry421SameOwner(t *testing.T) {
	hits := 0
	peer, stop := echoServer(t, "peer", func(w http.ResponseWriter, r *http.Request) bool {
		hits++
		if hits == 1 {
			http.Error(w, "not mine yet", http.StatusMisdirectedRequest)
			return true
		}
		return false
	})
	defer stop()
	rt := retryRouter(NewTable([]string{"self.invalid:1", peer}, 16))
	key := keyOwnedBy(t, rt.Table.Current(), peer, nil, "")

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+key, nil)
	rt.Dispatch(rec, req, key, []byte("rows"), func() { t.Fatal("remote key ran locally") })

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry: %s", rec.Code, rec.Body)
	}
	if got, want := rec.Body.String(), "peer:"+key+":rows"; got != want {
		t.Fatalf("relayed body %q, want %q", got, want)
	}
	if hits != 2 {
		t.Fatalf("owner hit %d times, want the original attempt plus one retry", hits)
	}
	if rt.Retries.Value() != 1 {
		t.Fatalf("retries counter %d, want 1", rt.Retries.Value())
	}
}

// TestRouterRetryGenBumpSameOwner: the first forward fails outright and
// the generation bumps underneath it while ownership re-resolves to the
// same (now reachable) address — a replica restart behind a stable
// membership view. The bump alone must trigger the retry.
func TestRouterRetryGenBumpSameOwner(t *testing.T) {
	var rt *Router
	hits := 0
	peer, stop := echoServer(t, "peer", func(w http.ResponseWriter, r *http.Request) bool {
		hits++
		if hits == 1 {
			// Fail the first attempt at the HTTP layer (a 421, standing in
			// for the hung-up replica) and bump the generation with an
			// identical member list: same owner, new ring.
			rt.Table.Set(rt.Table.Current().Members())
			http.Error(w, "restarting", http.StatusMisdirectedRequest)
			return true
		}
		return false
	})
	defer stop()
	rt = retryRouter(NewTable([]string{"self.invalid:1", peer}, 16))
	key := keyOwnedBy(t, rt.Table.Current(), peer, nil, "")
	gen := rt.Table.Current().Gen()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+key, nil)
	rt.Dispatch(rec, req, key, []byte("x"), func() { t.Fatal("remote key ran locally") })

	if rt.Table.Current().Gen() == gen {
		t.Fatal("test did not bump the generation")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry: %s", rec.Code, rec.Body)
	}
	if hits != 2 || rt.Retries.Value() != 1 {
		t.Fatalf("hits=%d retries=%d, want 2 and 1", hits, rt.Retries.Value())
	}
}

// TestRouterDeadPeerNoRingChange: the owner is unreachable and nothing
// about the ring moved — there is no better answer, so Dispatch must
// NOT retry (the counter stays 0) and the client gets 502.
func TestRouterDeadPeerNoRingChange(t *testing.T) {
	// A listener that was closed immediately: connection refused.
	dead, stop := echoServer(t, "dead", nil)
	stop()
	rt := retryRouter(NewTable([]string{"self.invalid:1", dead}, 16))
	key := keyOwnedBy(t, rt.Table.Current(), dead, nil, "")

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/predict?model="+key, nil)
	rt.Dispatch(rec, req, key, nil, func() { t.Fatal("remote key ran locally") })

	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", rec.Code, rec.Body)
	}
	if rt.Retries.Value() != 0 {
		t.Fatalf("retries counter %d, want 0 — no retry was attempted", rt.Retries.Value())
	}
	if rt.ForwardErrors.Value() != 1 {
		t.Fatalf("forward errors %d, want 1", rt.ForwardErrors.Value())
	}
}
