package shard

import (
	"sync"
	"sync/atomic"
)

// Table publishes the cluster's current ring behind an atomic pointer,
// exactly the discipline of the model registry: readers load wait-free
// on every request, a membership change builds a new immutable ring and
// swaps it in one step. The cur field is atomic-only storage audited in
// this file (see internal/lint's atomicguard registry) — everything
// outside goes through Current and Set.
type Table struct {
	cur atomic.Pointer[Ring]

	// mu serializes writers (Set); readers never take it.
	mu     sync.Mutex
	gen    uint64 // last generation handed out
	vnodes int
}

// NewTable builds a table serving the initial member set. vnodes <= 0
// selects DefaultVNodes; the vnode count is fixed for the table's life
// so every generation of the ring hashes compatibly.
func NewTable(members []string, vnodes int) *Table {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	t := &Table{vnodes: vnodes}
	t.Set(members)
	return t
}

// Current returns the serving ring, wait-free. The result is immutable
// and never nil after NewTable.
func (t *Table) Current() *Ring { return t.cur.Load() }

// Set builds a ring over members with the next generation number and
// swaps it in, returning the new ring. In-flight requests that loaded
// the previous ring keep a consistent (if stale) view; the router's
// retry-once rule covers the hand-off window.
func (t *Table) Set(members []string) *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	r := NewRing(members, t.vnodes)
	r.gen = t.gen
	t.cur.Store(r)
	return r
}
