// Package shard scales the serving layer across replicas: a
// consistent-hash ring maps model names onto a member set, an atomic
// table hot-swaps the ring on membership change, and a router in front
// of the HTTP surface forwards requests to the owning replica.
//
// The design follows the repository's lock-free serving contract:
//
//   - Ring is immutable. Member names expand into vnodes hashed onto a
//     64-bit circle (FNV-1a); a key is owned by the first vnode at or
//     after its hash. Vnodes smooth the key distribution and keep the
//     name→replica mapping stable under membership change: when a
//     member leaves, only the keys it owned move, everything else maps
//     exactly as before.
//   - Table holds the current ring behind an atomic pointer — the same
//     swap discipline as the model registry. Request handlers load the
//     ring wait-free; a membership change builds a new ring with a
//     bumped generation and swaps it in one step, so no request ever
//     observes a half-updated member set.
//   - Router resolves a key against the table and either serves locally
//     or forwards to the owner over loopback HTTP. A forward that fails
//     re-resolves the ring and retries once if ownership moved (the
//     retry-once-on-ring-change rule); a forwarded request landing on a
//     non-owner answers 421 Misdirected Request, which both breaks
//     forwarding loops and signals the sender its ring is stale.
package shard
