# Developer entry points; CI runs the same commands.

GO ?= go

.PHONY: all build test test-short race lint lint-mutations fmt

all: lint build test-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./internal/... ./cmd/...

# The style and contract gate: formatting, the standard vet suite, and
# the repository's own analyzers (cmd/savet — see internal/lint).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/savet ./...

# Prove the analyzers still catch what they exist for: plant one
# violation of each contract in a scratch tree and expect savet to fail.
lint-mutations:
	./scripts/lint_mutations.sh

fmt:
	gofmt -w .
