#!/bin/sh
# Negative tests for the savet suite: inject one known contract
# violation at a time into a scratch copy of the tree and assert the
# lint gate actually fails. A suite that cannot catch the violations it
# exists for is worse than none; CI runs this alongside the clean sweep.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT INT TERM

savet="$work/savet"
(cd "$root" && go build -o "$savet" ./cmd/savet)

# mutate <label> <file-under-tree> <expected-analyzer> writes stdin to
# the file inside a fresh copy of the repo and expects savet to fail on
# that package with a finding from the expected analyzer.
mutate() {
    label=$1
    file=$2
    analyzer=$3
    tree="$work/tree"
    rm -rf "$tree"
    mkdir -p "$tree"
    (cd "$root" && git archive --format=tar HEAD) | (cd "$tree" && tar xf -)
    # Include uncommitted states of tracked files so the script also
    # works mid-change; fall back to the archive when not in git.
    (cd "$root" && tar cf - --exclude .git ./go.mod ./internal ./cmd 2>/dev/null) | (cd "$tree" && tar xf -)
    cat >"$tree/$file"
    pkgdir=$(dirname "$file")
    if out=$(cd "$tree" && "$savet" "./$pkgdir/" 2>&1); then
        echo "FAIL [$label]: savet passed a tree containing a planted $analyzer violation" >&2
        exit 1
    fi
    if ! printf '%s\n' "$out" | grep -q "\[$analyzer\]"; then
        echo "FAIL [$label]: savet failed but not with a $analyzer finding:" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
    echo "ok   [$label]: caught by $analyzer"
}

mutate "reassociated reduction" internal/core/zz_mutation.go detfloat <<'EOF'
package core

// Planted violation: a lane-split float reduction in a deterministic
// kernel package.
func zzMutationDot(x, y []float64) float64 {
	var s0, s1 float64
	for i := 0; i+2 <= len(x); i += 2 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
	}
	return s0 + s1
}
EOF

mutate "map-order accumulation" internal/stream/zz_mutation.go mapiter <<'EOF'
package stream

// Planted violation: float accumulation in map iteration order.
func zzMutationSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
EOF

mutate "dropped transport error" internal/dist/zz_mutation.go commerr <<'EOF'
package dist

import "saco/internal/mpi"

// Planted violation: a Transport teardown with the error thrown away.
func zzMutationClose(t mpi.Transport) {
	t.Close()
}
EOF

echo "all planted violations caught"
