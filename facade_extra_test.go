package saco_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"saco"
)

func TestPublicAPILassoPath(t *testing.T) {
	data := saco.Regression("path", 11, 200, 80, 0.15, 6, 0.05)
	cols := data.Cols()
	lmax := saco.LambdaMax(cols, data.B)
	path, err := saco.LassoPath(cols, data.B, []float64{0.5 * lmax, 0.05 * lmax}, saco.LassoOptions{
		Iters: 300, BlockSize: 4, Accelerated: true, Seed: 1, S: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[1].NNZ < path[0].NNZ {
		t.Fatalf("path shape wrong: %+v", path)
	}
}

func TestPublicAPICASVM(t *testing.T) {
	data := saco.Classification("ca", 21, 200, 40, 0.2, 0.02)
	model, err := saco.TrainCASVM(data.AsCSR(), data.B, saco.CASVMOptions{
		Clusters: 3,
		Seed:     1,
		Local:    saco.SVMOptions{Lambda: 1, Iters: 3000, Seed: 2, S: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := model.PredictAll(data.AsCSR())
	correct := 0
	for i, s := range scores {
		if s*data.B[i] > 0 {
			correct++
		}
	}
	if correct < 140 {
		t.Fatalf("CA-SVM accuracy %d/200 too low", correct)
	}
}

func TestPublicAPIMulticoreBackend(t *testing.T) {
	data := saco.Regression("mc", 31, 300, 120, 0.15, 8, 0.05)
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
	opt := saco.LassoOptions{Lambda: lambda, BlockSize: 8, Iters: 400, S: 32, Accelerated: true, Seed: 2}
	seq, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Exec = saco.Multicore(0) // all cores
	par, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if par.Objective != seq.Objective {
		t.Fatalf("multicore objective %v != sequential %v", par.Objective, seq.Objective)
	}
	for i := range par.X {
		if par.X[i] != seq.X[i] {
			t.Fatalf("multicore X[%d] differs", i)
		}
	}
}

func TestPublicAPIPredictAccuracy(t *testing.T) {
	data := saco.Classification("pa", 13, 250, 60, 0.25, 0.02)
	res, err := saco.SVM(data.Rows(), data.B, saco.SVMOptions{Lambda: 1, Iters: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	margins := saco.Predict(data.Rows(), res.X)
	if len(margins) != 250 {
		t.Fatalf("Predict length %d", len(margins))
	}
	acc := saco.Accuracy(data.Rows(), data.B, res.X)
	if acc < 0.85 {
		t.Fatalf("accuracy %v too low", acc)
	}
	if saco.Accuracy(data.Rows(), nil, res.X) != 0 {
		t.Fatal("empty-label accuracy should be 0")
	}
}

// TestPublicAPIServe walks the serving facade end to end: train → model
// → registry → HTTP scoring → live lock-free refit → hot-swapped
// version, all through the public saco surface.
func TestPublicAPIServe(t *testing.T) {
	data := saco.Regression("serve-api", 31, 150, 30, 0.3, 5, 0.05)
	a := data.AsCSR()
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
	res, err := saco.Lasso(data.Cols(), data.B, saco.LassoOptions{Lambda: lambda, Iters: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	m := saco.NewModel(saco.KindLasso, res.X)
	m.Lambda = lambda
	m.TrainRows = a.M
	reg, err := saco.OpenModelRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}

	srv := saco.NewServer(reg, saco.ServeOptions{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	resp, err := http.Post(ts.URL+"/predict", "text/plain", strings.NewReader("1:1 2:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		ModelVersion uint64    `json:"model_version"`
		Scores       []float64 `json:"scores"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.ModelVersion != 1 || len(pr.Scores) != 1 {
		t.Fatalf("predict reply %+v", pr)
	}
	if want := res.X[0] + res.X[1]; pr.Scores[0] != want {
		t.Fatalf("score %v, want %v", pr.Scores[0], want)
	}

	// Live refit publishes a new version against the same registry.
	if err := saco.Refit(context.Background(), reg, a, data.B, saco.RefitOptions{
		Every: 20 * time.Millisecond, Workers: 2, MaxPublishes: 1, Seed: 9,
	}); err != nil {
		t.Fatal(err)
	}
	if reg.Version() != 2 {
		t.Fatalf("registry at %d after refit, want 2", reg.Version())
	}

	// The round trip through disk preserves the published model.
	loaded, err := saco.LoadModel(dir + "/model-00000002.sacm")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != saco.KindLasso || loaded.Version != 2 {
		t.Fatalf("loaded %+v", loaded)
	}
}
