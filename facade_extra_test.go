package saco_test

import (
	"testing"

	"saco"
)

func TestPublicAPILassoPath(t *testing.T) {
	data := saco.Regression("path", 11, 200, 80, 0.15, 6, 0.05)
	cols := data.Cols()
	lmax := saco.LambdaMax(cols, data.B)
	path, err := saco.LassoPath(cols, data.B, []float64{0.5 * lmax, 0.05 * lmax}, saco.LassoOptions{
		Iters: 300, BlockSize: 4, Accelerated: true, Seed: 1, S: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[1].NNZ < path[0].NNZ {
		t.Fatalf("path shape wrong: %+v", path)
	}
}

func TestPublicAPICASVM(t *testing.T) {
	data := saco.Classification("ca", 21, 200, 40, 0.2, 0.02)
	model, err := saco.TrainCASVM(data.AsCSR(), data.B, saco.CASVMOptions{
		Clusters: 3,
		Seed:     1,
		Local:    saco.SVMOptions{Lambda: 1, Iters: 3000, Seed: 2, S: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := model.PredictAll(data.AsCSR())
	correct := 0
	for i, s := range scores {
		if s*data.B[i] > 0 {
			correct++
		}
	}
	if correct < 140 {
		t.Fatalf("CA-SVM accuracy %d/200 too low", correct)
	}
}

func TestPublicAPIMulticoreBackend(t *testing.T) {
	data := saco.Regression("mc", 31, 300, 120, 0.15, 8, 0.05)
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
	opt := saco.LassoOptions{Lambda: lambda, BlockSize: 8, Iters: 400, S: 32, Accelerated: true, Seed: 2}
	seq, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Exec = saco.Multicore(0) // all cores
	par, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if par.Objective != seq.Objective {
		t.Fatalf("multicore objective %v != sequential %v", par.Objective, seq.Objective)
	}
	for i := range par.X {
		if par.X[i] != seq.X[i] {
			t.Fatalf("multicore X[%d] differs", i)
		}
	}
}

func TestPublicAPIPredictAccuracy(t *testing.T) {
	data := saco.Classification("pa", 13, 250, 60, 0.25, 0.02)
	res, err := saco.SVM(data.Rows(), data.B, saco.SVMOptions{Lambda: 1, Iters: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	margins := saco.Predict(data.Rows(), res.X)
	if len(margins) != 250 {
		t.Fatalf("Predict length %d", len(margins))
	}
	acc := saco.Accuracy(data.Rows(), data.B, res.X)
	if acc < 0.85 {
		t.Fatalf("accuracy %v too low", acc)
	}
	if saco.Accuracy(data.Rows(), nil, res.X) != 0 {
		t.Fatal("empty-label accuracy should be 0")
	}
}
