//go:build tools

// This file is the conventional home of tool-dependency pins
// (anonymous imports under a "tools" build tag, so `go mod tidy` keeps
// the versions in go.mod).
//
// It is deliberately empty: the static-analysis suite (internal/lint,
// cmd/savet) is written against the standard library alone — its
// analyzers mirror the golang.org/x/tools/go/analysis API shape but do
// not import it, so the module keeps its zero-dependency contract and
// builds in fully offline environments. If the repository ever adopts
// x/tools (multichecker, analysistest, facts), pin it here:
//
//	import (
//		_ "golang.org/x/tools/go/analysis/multichecker"
//	)
//
// and vendor it, so offline builds keep working.
package tools
