package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"saco"
)

// syncBuffer is a mutex-guarded buffer: run writes progress lines from
// several goroutines while the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestBadFlags(t *testing.T) {
	ctx := context.Background()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run(ctx, nil, &out, &errb); code != 2 || !strings.Contains(errb.String(), "-models is required") {
		t.Fatalf("missing -models: %q", errb.String())
	}
	errb.Reset()
	if code := run(ctx, []string{"-models", t.TempDir(), "-refit-task", "ridge"}, &out, &errb); code != 2 ||
		!strings.Contains(errb.String(), "unknown -refit-task") {
		t.Fatalf("bad refit task: %q", errb.String())
	}
	errb.Reset()
	if code := run(ctx, []string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h: exit %d, want 0", code)
	}
}

// writeModelVersion publishes a model file directly into the directory,
// the way an external trainer (sasolve, another saserve) would.
func writeModelVersion(t *testing.T, dir string, version uint64, kind saco.ModelKind, x []float64) {
	t.Helper()
	m := saco.NewModel(kind, x)
	m.Version = version
	m.Lambda = 0.1
	m.TrainRows = len(x)
	if err := saco.SaveModel(filepath.Join(dir, fmt.Sprintf("model-%08d.sacm", version)), m); err != nil {
		t.Fatal(err)
	}
}

// startServer runs the CLI against an ephemeral port and returns its
// base URL plus a shutdown func that asserts a clean exit.
func startServer(t *testing.T, args ...string) (string, *syncBuffer, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	var errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out, &errb) }()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			url = "http://" + m[1]
			break
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early (%d): %s / %s", code, out.String(), errb.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %s / %s", out.String(), errb.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return url, out, func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit %d: %s / %s", code, out.String(), errb.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("server never exited: %s", out.String())
		}
	}
}

// statsVersion polls /stats until the serving version reaches want.
func statsVersion(t *testing.T, url string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last uint64
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/stats")
		if err == nil {
			var st struct {
				ModelVersion uint64 `json:"model_version"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil {
				last = st.ModelVersion
				if last >= want {
					return
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stats never reached version %d (last %d)", want, last)
}

// TestServeHotSwapCycle is the CLI half of the serving story: load a
// model trained by sasolve's binary writer, score against it, drop a
// second version into the directory, and watch the server hot-swap.
func TestServeHotSwapCycle(t *testing.T) {
	dir := t.TempDir()
	writeModelVersion(t, dir, 1, saco.KindSVM, []float64{1, 2, 3, 4})
	url, _, shutdown := startServer(t, "-models", dir, "-watch", "20ms")
	defer shutdown()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	score := func() (float64, uint64) {
		resp, err := http.Post(url+"/predict", "text/plain", strings.NewReader("2:1 4:0.5\n"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d %s", resp.StatusCode, data)
		}
		var pr struct {
			ModelVersion uint64    `json:"model_version"`
			Scores       []float64 `json:"scores"`
			Labels       []int     `json:"labels"`
		}
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if len(pr.Scores) != 1 || len(pr.Labels) != 1 {
			t.Fatalf("malformed reply %s", data)
		}
		return pr.Scores[0], pr.ModelVersion
	}

	s, v := score()
	if v != 1 || s != 2*1+4*0.5 {
		t.Fatalf("v1 score = %v @ version %d", s, v)
	}

	writeModelVersion(t, dir, 2, saco.KindSVM, []float64{-1, -2, -3, -4})
	statsVersion(t, url, 2)
	s, v = score()
	if v != 2 || s != -(2*1+4*0.5) {
		t.Fatalf("v2 score = %v @ version %d", s, v)
	}
}

// TestServeRefitCycle: saserve -refit publishes new versions into the
// registry while serving; the version advances and the server reports
// the refit's completion.
func TestServeRefitCycle(t *testing.T) {
	dir := t.TempDir()
	writeModelVersion(t, dir, 1, saco.KindLasso, make([]float64, 4))

	svm := filepath.Join(t.TempDir(), "refit.svm")
	data := `1 1:1 3:0.5
-1 2:-1 4:2
1 1:0.3 4:-1
-1 3:1.5
1 2:0.7 3:-0.2
-1 1:-0.4 4:0.9
`
	if err := os.WriteFile(svm, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	url, out, shutdown := startServer(t,
		"-models", dir, "-watch", "20ms",
		"-refit", svm, "-refit-every", "30ms", "-refit-publishes", "2", "-refit-workers", "2")
	defer shutdown()

	statsVersion(t, url, 3) // initial + 2 refit publishes
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "refit finished") {
		if time.Now().After(deadline) {
			t.Fatalf("refit never finished: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "refit: published version") {
		t.Fatalf("no publish log lines: %s", out.String())
	}

	// The published artifact is loadable and typed.
	m, err := saco.LoadModel(filepath.Join(dir, "model-00000003.sacm"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != saco.KindLasso || m.Version != 3 || m.TrainRows != 6 {
		t.Fatalf("refit artifact: %+v", m)
	}
}

// TestServeRefitFailureIsFatal: an impossible refit (untyped model, no
// -refit-task) must take the process down with an error, not silently
// serve stale models.
func TestServeRefitFailureIsFatal(t *testing.T) {
	dir := t.TempDir()
	writeModelVersion(t, dir, 1, saco.KindRaw, []float64{1, 2, 3, 4})
	svm := filepath.Join(t.TempDir(), "refit.svm")
	if err := os.WriteFile(svm, []byte("1 1:1\n-1 2:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb syncBuffer
	code := run(context.Background(), []string{
		"-addr", "127.0.0.1:0", "-models", dir, "-refit", svm, "-refit-every", "10ms",
	}, &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "refit") {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}
