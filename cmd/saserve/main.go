// Command saserve serves predictions over HTTP from a directory of
// versioned binary models (the .sacm artifacts sasolve writes), and can
// simultaneously refit the live model on new labeled data without ever
// blocking a request.
//
// Train, serve, score:
//
//	sasolve -task lasso -data train.svm -iters 5000 -out models/model-00000001.sacm
//	saserve -models models -addr :8700
//	curl -d '1:0.5 3:1.2' http://localhost:8700/predict
//
// Publishing a higher-numbered model file into the directory hot-swaps
// it under live traffic (the watcher polls every -watch); running with
// -refit keeps HOGWILD! solver workers training on the given rows and
// publishes a new version every -refit-every, while -learn accepts
// labeled rows over POST /learn into a bounded buffer drained by the
// same live refit.
//
// Cluster mode (-cluster) shards a fleet of named models — one
// subdirectory of -models per model — across a static peer list
// (-peers) with a consistent-hash ring: each replica opens only the
// registries it owns and transparently forwards /predict and /learn
// for the rest to the owning peer. Every replica runs the same
// invocation with its own -self address.
//
// Endpoints: POST /predict (JSON {"rows":[{"indices":[...1-based...],
// "values":[...]}]} or LIBSVM lines; cluster mode adds ?model=name),
// POST /learn (labeled rows, with -learn), GET /healthz, GET /stats,
// GET /metrics (Prometheus text), and in cluster mode GET /cluster and
// POST /cluster/members.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"saco"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks a bad invocation (printed with the flag defaults,
// exit 2).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// run is the whole program behind a testable seam: parse on a private
// FlagSet, serve until ctx is cancelled, return the exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("saserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelDir    = fs.String("models", "", "model registry directory (required); cluster mode shards its subdirectories")
		addr        = fs.String("addr", ":8700", "HTTP listen address")
		watch       = fs.Duration("watch", 2*time.Second, "poll the model directory this often for new versions")
		maxBatch    = fs.Int("max-batch", 256, "max rows coalesced into one scoring kernel call")
		batchWindow = fs.Duration("batch-window", 500*time.Microsecond, "micro-batch linger window after the first request of a batch")
		workers     = fs.Int("workers", 0, "scoring kernel width on the persistent pool (0 = all cores)")
		queueDepth  = fs.Int("queue-depth", 1024, "dispatcher queue bound; a full queue answers 429 immediately")
		maxQDelay   = fs.Duration("max-queue-delay", 0, "shed requests queued longer than this before scoring (0 = never)")
		mmapLoad    = fs.Bool("mmap", false, "serve model coefficients zero-copy from page-mapped artifacts (falls back to copy)")
		clusterMode = fs.Bool("cluster", false, "shard the models under -models across -peers by consistent hashing")
		self        = fs.String("self", "", "this replica's advertised host:port on the ring (required with -cluster)")
		peers       = fs.String("peers", "", "comma-separated replica addresses forming the cluster (self is added if missing)")
		vnodes      = fs.Int("vnodes", 0, "virtual nodes per ring member (0 = library default)")
		learnOn     = fs.Bool("learn", false, "accept labeled rows over POST /learn and refit the live model on them")
		learnCap    = fs.Int("learn-cap", 65536, "labeled rows buffered per model for /learn before backpressure")
		refitPath   = fs.String("refit", "", "LIBSVM file of labeled rows to refit the live model on (optional)")
		refitEvery  = fs.Duration("refit-every", 2*time.Second, "publish a new model version this often while refitting")
		refitW      = fs.Int("refit-workers", 0, "lock-free refit solver workers (0 = all cores)")
		refitKind   = fs.String("refit-task", "", "refit task when the model is untyped: lasso, svm or pegasos (default: from the model header)")
		refitLambda = fs.Float64("refit-lambda", 0, "refit regularization override (0 = the model header's lambda)")
		refitMu     = fs.Int("refit-mu", 1, "refit lasso block size")
		refitSeed   = fs.Uint64("refit-seed", 42, "refit sampling seed")
		refitPubs   = fs.Int("refit-publishes", 0, "stop refitting after this many publishes (0 = run until shutdown)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	err := serveMain(ctx, stdout, &config{
		modelDir: *modelDir, addr: *addr, watch: *watch,
		maxBatch: *maxBatch, batchWindow: *batchWindow, workers: *workers,
		queueDepth: *queueDepth, maxQueueDelay: *maxQDelay, mmap: *mmapLoad,
		cluster: *clusterMode, self: *self, peers: *peers, vnodes: *vnodes,
		learn: *learnOn, learnCap: *learnCap,
		refitPath: *refitPath, refitEvery: *refitEvery, refitW: *refitW,
		refitKind: *refitKind, refitLambda: *refitLambda, refitMu: *refitMu,
		refitSeed: *refitSeed, refitPubs: *refitPubs,
	})
	if err != nil {
		fmt.Fprintf(stderr, "saserve: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fs.PrintDefaults()
			return 2
		}
		return 1
	}
	return 0
}

// config carries the parsed flags.
type config struct {
	modelDir, addr  string
	watch           time.Duration
	maxBatch        int
	batchWindow     time.Duration
	workers         int
	queueDepth      int
	maxQueueDelay   time.Duration
	mmap            bool
	cluster         bool
	self, peers     string
	vnodes          int
	learn           bool
	learnCap        int
	refitPath       string
	refitEvery      time.Duration
	refitW, refitMu int
	refitKind       string
	refitLambda     float64
	refitSeed       uint64
	refitPubs       int
}

// splitPeers parses the -peers comma list, dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serveMain opens the registry (or joins the cluster), mounts the
// server, and runs the watcher and (optionally) the refit loop until
// ctx is cancelled.
func serveMain(ctx context.Context, stdout io.Writer, c *config) error {
	if c.modelDir == "" {
		return usageError{"-models is required"}
	}
	kind := saco.KindRaw
	switch c.refitKind {
	case "":
	case "lasso":
		kind = saco.KindLasso
	case "svm":
		kind = saco.KindSVM
	case "pegasos":
		kind = saco.KindPegasos
	default:
		return usageError{fmt.Sprintf("unknown -refit-task %q (lasso, svm, pegasos)", c.refitKind)}
	}
	if c.cluster {
		if c.self == "" {
			return usageError{"-self is required with -cluster"}
		}
		if c.refitPath != "" {
			return usageError{"-refit is file-based and single-model; with -cluster use -learn"}
		}
	}
	mode := saco.LoadCopy
	if c.mmap {
		mode = saco.LoadMmap
	}

	if w := saco.KernelWarning(); w != "" {
		fmt.Fprintf(stdout, "warning: %s\n", w)
	}
	fmt.Fprintf(stdout, "kernels: %s\n", saco.KernelSet())

	// runCtx scopes every background loop (refit file replay, /learn
	// refit streams); stop() on shutdown ends them all.
	runCtx, stop := context.WithCancel(ctx)
	defer stop()

	mr := saco.NewMetricsRegistry()
	opt := saco.ServeOptions{
		MaxBatch: c.maxBatch, BatchWindow: c.batchWindow, Workers: c.workers,
		QueueDepth: c.queueDepth, MaxQueueDelay: c.maxQueueDelay,
		Metrics: mr,
	}
	if c.learn {
		opt.LearnCap = c.learnCap
		refitSteps := mr.Counter("saco_refit_steps_total", "lock-free refit solver steps")
		refitPubsC := mr.Counter("saco_refit_publishes_total", "model versions published by live refits")
		opt.OnLearn = func(name string, reg *saco.ModelRegistry, buf *saco.LearnBuffer) {
			label := name
			if label == "" {
				label = "model"
			}
			fmt.Fprintf(stdout, "learn: refit stream started for %s\n", label)
			go func() {
				err := saco.RefitStream(runCtx, reg, buf, saco.RefitOptions{
					Every: c.refitEvery, Workers: c.refitW, Seed: c.refitSeed,
					BlockSize: c.refitMu, Lambda: c.refitLambda, Kind: kind,
					Steps: refitSteps, Publishes: refitPubsC, Log: stdout,
				})
				if err != nil && runCtx.Err() == nil {
					fmt.Fprintf(stdout, "learn refit %s failed: %v\n", label, err)
				}
			}()
		}
	}

	var (
		srv *saco.ServeServer
		reg *saco.ModelRegistry
	)
	if c.cluster {
		cl, err := saco.NewCluster(c.modelDir, c.self, splitPeers(c.peers), saco.ServeClusterOptions{
			VNodes: c.vnodes, Mode: mode, RescanEvery: c.watch, Metrics: mr,
		})
		if err != nil {
			return err
		}
		defer cl.Close()
		ring := cl.Ring()
		fmt.Fprintf(stdout, "cluster: %s owns %d model(s) of %s on a ring of %d replicas (%s load)\n",
			c.self, len(cl.Owned()), c.modelDir, ring.Size(), mode)
		srv = saco.NewClusterServer(cl, opt)
	} else {
		var err error
		reg, err = saco.OpenModelRegistryMode(c.modelDir, mode)
		if err != nil {
			return err
		}
		if m := reg.Current(); m != nil {
			fmt.Fprintf(stdout, "serving model version %d (%s, %d features, %d nonzero) from %s\n",
				m.Version, m.Kind, m.Features, m.NNZ(), c.modelDir)
		} else {
			fmt.Fprintf(stdout, "no model in %s yet; serving 503 until one appears\n", c.modelDir)
		}
		reg.Watch(c.watch)
		defer reg.StopWatch()
		srv = saco.NewServer(reg, opt)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	refitDone := make(chan error, 1)
	refitting := c.refitPath != ""
	if refitting {
		features := 0
		if m := reg.Current(); m != nil {
			features = m.Features
		}
		a, b, err := saco.LoadLIBSVM(c.refitPath, features)
		if err != nil {
			hs.Close()
			return fmt.Errorf("loading -refit data: %w", err)
		}
		fmt.Fprintf(stdout, "refitting on %s: %d rows, publishing every %v\n", c.refitPath, a.M, c.refitEvery)
		go func() {
			refitDone <- saco.Refit(runCtx, reg, a, b, saco.RefitOptions{
				Every: c.refitEvery, Workers: c.refitW, Seed: c.refitSeed,
				BlockSize: c.refitMu, Lambda: c.refitLambda, Kind: kind,
				MaxPublishes: c.refitPubs, Log: stdout,
			})
		}()
	}

	shutdown := func() error {
		fmt.Fprintln(stdout, "shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			hs.Close()
		}
		stop()
		if refitting {
			return <-refitDone
		}
		return nil
	}

	for {
		select {
		case err := <-httpDone:
			// The listener died underneath us; stop everything and surface it.
			stop()
			if refitting {
				<-refitDone
			}
			return err
		case err := <-refitDone:
			refitting = false
			if err != nil && runCtx.Err() == nil {
				// A failed refit is fatal: the operator asked for live
				// training and is not getting it.
				shutdown() //nolint:errcheck // already returning the cause
				return fmt.Errorf("refit: %w", err)
			}
			fmt.Fprintln(stdout, "refit finished; serving continues")
		case <-ctx.Done():
			if err := shutdown(); err != nil {
				return fmt.Errorf("refit: %w", err)
			}
			return nil
		}
	}
}
