package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"saco"
)

// reservePort grabs an ephemeral loopback port and releases it so a
// replica can bind it as its advertised ring address. (The tiny window
// between close and rebind is the standard test tradeoff for needing
// the address before the process starts.)
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// predictModel posts one LIBSVM row for a named model and returns
// (status, score, version).
func predictModel(t *testing.T, url, model, row string) (int, float64, uint64) {
	t.Helper()
	target := url + "/predict"
	if model != "" {
		target += "?model=" + model
	}
	resp, err := http.Post(target, "text/plain", strings.NewReader(row))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr struct {
		ModelVersion uint64    `json:"model_version"`
		Scores       []float64 `json:"scores"`
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0, 0
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Scores) != 1 {
		t.Fatalf("want one score, got %v", pr.Scores)
	}
	return resp.StatusCode, pr.Scores[0], pr.ModelVersion
}

// parseCounter reads one unlabeled counter sample out of a /metrics
// scrape (0 when the series is absent).
func parseCounter(t *testing.T, scrape, name string) uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(scrape)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestClusterFlagValidation: cluster mode insists on -self and rejects
// the single-model -refit file replay.
func TestClusterFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out, errb syncBuffer
	if code := run(ctx, []string{"-models", t.TempDir(), "-cluster"}, &out, &errb); code != 2 ||
		!strings.Contains(errb.String(), "-self is required") {
		t.Fatalf("missing -self: exit %d, stderr %q", code, errb.String())
	}
	errb = syncBuffer{}
	if code := run(ctx, []string{
		"-models", t.TempDir(), "-cluster", "-self", "127.0.0.1:1", "-refit", "x.svm",
	}, &out, &errb); code != 2 || !strings.Contains(errb.String(), "-refit") {
		t.Fatalf("cluster+refit: exit %d, stderr %q", code, errb.String())
	}
}

// TestServeClusterMode boots two saserve replicas over one fleet
// directory and checks the sharded-serving contract end to end: every
// model answers with its own coefficients through EITHER replica (the
// non-owner forwards), and the forward counters reconcile with the
// routing the ring dictates.
func TestServeClusterMode(t *testing.T) {
	root := t.TempDir()
	models := []string{"alpha", "beta", "gamma", "delta"}
	for i, name := range models {
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		// Distinct coefficient at index 1 so a misrouted predict is
		// caught by the score, not just the status.
		writeModelVersion(t, dir, 1, saco.KindSVM, []float64{1, float64(i + 1), 3, 4})
	}

	a1, a2 := reservePort(t), reservePort(t)
	peerList := a1 + "," + a2
	common := []string{"-models", root, "-cluster", "-peers", peerList, "-watch", "20ms", "-vnodes", "16"}
	url1, out1, stop1 := startServer(t, append(common, "-self", a1, "-addr", a1)...)
	defer stop1()
	url2, _, stop2 := startServer(t, append(common, "-self", a2, "-addr", a2)...)
	defer stop2()
	if !strings.Contains(out1.String(), "cluster: "+a1) {
		t.Fatalf("no cluster banner: %s", out1.String())
	}

	// Wait until the two replicas jointly own the whole fleet at v1.
	clusterOwned := func(url string) map[string]uint64 {
		resp, err := http.Get(url + "/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Owned map[string]uint64 `json:"owned"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Owned
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		owned := clusterOwned(url1)
		for name, v := range clusterOwned(url2) {
			owned[name] = v
		}
		ready := len(owned) == len(models)
		for _, v := range owned {
			ready = ready && v == 1
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never fully owned: %v", owned)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every model scores with its own coefficients through both
	// replicas; the row picks out coefficient 1 (x[1]·1 + x[3]·0.5).
	for i, name := range models {
		want := float64(i+1) + 4*0.5
		for _, u := range []string{url1, url2} {
			status, score, version := predictModel(t, u, name, "2:1 4:0.5\n")
			if status != http.StatusOK || version != 1 || score != want {
				t.Fatalf("model %s via %s: status %d score %v version %d (want %v @ 1)",
					name, u, status, score, version, want)
			}
		}
	}

	// Each name was posted to both replicas and the ring is stable, so
	// exactly one side of each pair forwarded: 4 forwards, no errors.
	scrape := func(url string) string {
		_, body := httpGetBody(t, url+"/metrics")
		return body
	}
	s1, s2 := scrape(url1), scrape(url2)
	fwd := parseCounter(t, s1, "saco_forwards_total") + parseCounter(t, s2, "saco_forwards_total")
	if fwd != uint64(len(models)) {
		t.Fatalf("forwards = %d, want %d\nreplica1:\n%s\nreplica2:\n%s", fwd, len(models), s1, s2)
	}
	if e := parseCounter(t, s1, "saco_forward_errors_total") + parseCounter(t, s2, "saco_forward_errors_total"); e != 0 {
		t.Fatalf("forward errors = %d", e)
	}

	// Unknown model name: 404 everywhere, never a hang.
	if status, _, _ := predictModel(t, url1, "nosuch", "1:1\n"); status != http.StatusNotFound {
		t.Fatalf("unknown model answered %d", status)
	}
	// Cluster predicts require a model name.
	if status, _, _ := predictModel(t, url1, "", "1:1\n"); status != http.StatusBadRequest {
		t.Fatalf("nameless cluster predict answered %d", status)
	}
}

// httpGetBody fetches a URL and returns (status, body).
func httpGetBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestServeLearnCycle: saserve -learn with an empty registry accepts
// labeled rows over POST /learn, spins up a refit stream, publishes a
// model, and then serves predictions against it.
func TestServeLearnCycle(t *testing.T) {
	dir := t.TempDir()
	url, out, shutdown := startServer(t,
		"-models", dir, "-watch", "20ms",
		"-learn", "-learn-cap", "1024",
		"-refit-task", "lasso", "-refit-every", "30ms", "-refit-workers", "2", "-refit-lambda", "0.01")
	defer shutdown()

	// y = 2·x1 on a 3-feature design.
	var body strings.Builder
	for i := 0; i < 64; i++ {
		x := float64(i%7) - 3
		fmt.Fprintf(&body, "%g 1:%g 3:%g\n", 2*x, x, 0.01*float64(i%3))
	}
	resp, err := http.Post(url+"/learn", "text/plain", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("learn answered %d", resp.StatusCode)
	}

	statsVersion(t, url, 1) // the refit stream published
	if !strings.Contains(out.String(), "learn: refit stream started") {
		t.Fatalf("no refit stream log: %s", out.String())
	}

	status, score, _ := predictModel(t, url, "", "1:1\n")
	if status != http.StatusOK {
		t.Fatalf("predict after learn answered %d", status)
	}
	if score < 1.0 || score > 3.0 {
		t.Fatalf("learned weight scored %v for a y=2x signal", score)
	}
	_, scrape := httpGetBody(t, url+"/metrics")
	if got := parseCounter(t, scrape, "saco_learn_rows_total"); got != 64 {
		t.Fatalf("saco_learn_rows_total = %d, want 64", got)
	}
	if parseCounter(t, scrape, "saco_refit_publishes_total") == 0 {
		t.Fatal("refit publish counter never moved")
	}
}

// TestServeMmapFlag: -mmap serves the same numbers as the copy path
// and exposes the request counters on /metrics.
func TestServeMmapFlag(t *testing.T) {
	dir := t.TempDir()
	writeModelVersion(t, dir, 1, saco.KindSVM, []float64{1, 2, 3, 4})
	url, _, shutdown := startServer(t, "-models", dir, "-mmap", "-watch", "20ms")
	defer shutdown()

	status, score, version := predictModel(t, url, "", "2:1 4:0.5\n")
	if status != http.StatusOK || version != 1 || score != 2*1+4*0.5 {
		t.Fatalf("mmap predict: status %d score %v version %d", status, score, version)
	}
	_, scrape := httpGetBody(t, url+"/metrics")
	if parseCounter(t, scrape, "saco_requests_total") == 0 {
		t.Fatalf("no request counter on /metrics:\n%s", scrape)
	}
}
