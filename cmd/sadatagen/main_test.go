package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saco"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMissingArgsExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-name and -out are required") || !strings.Contains(stderr, "-scale") {
		t.Fatalf("stderr %q lacks the usage message", stderr)
	}
}

func TestUnknownReplicaExitsOne(t *testing.T) {
	code, _, stderr := runCLI(t, "-name", "mnist", "-out", filepath.Join(t.TempDir(), "x.svm"))
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr, `unknown replica "mnist"`) {
		t.Fatalf("stderr %q lacks the replica error", stderr)
	}
}

func TestUnknownFlagExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-not-a-flag")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "not-a-flag") {
		t.Fatalf("stderr %q lacks the flag name", stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr, "-name") {
		t.Fatalf("-h did not print usage: %q", stderr)
	}
}

// TestGenerateSmoke writes a tiny replica and checks the summary line,
// that the file parses back as valid LIBSVM with the reported shape, and
// that generation is deterministic in the seed (golden behavior: same
// seed → byte-identical file, different seed → different bytes).
func TestGenerateSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w1a.svm")
	code, stdout, stderr := runCLI(t, "-name", "w1a", "-scale", "0.05", "-out", out)
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote "+out+": 15 points, 123 features") {
		t.Fatalf("summary line %q lacks the shape report", stdout)
	}
	a, b, err := saco.LoadLIBSVM(out, 0)
	if err != nil {
		t.Fatalf("generated file does not parse: %v", err)
	}
	if a.M != 15 || len(b) != 15 {
		t.Fatalf("parsed %dx%d with %d labels", a.M, a.N, len(b))
	}
	for _, v := range b {
		if v != 1 && v != -1 {
			t.Fatalf("classification label %v", v)
		}
	}

	again := filepath.Join(dir, "again.svm")
	if code, _, stderr := runCLI(t, "-name", "w1a", "-scale", "0.05", "-out", again); code != 0 {
		t.Fatalf("second run failed: %s", stderr)
	}
	b1, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different files")
	}

	other := filepath.Join(dir, "seeded.svm")
	if code, _, stderr := runCLI(t, "-name", "w1a", "-scale", "0.05", "-seed", "7", "-out", other); code != 0 {
		t.Fatalf("seeded run failed: %s", stderr)
	}
	b3, err := os.ReadFile(other)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("different seeds produced identical files")
	}
}

// TestUnwritableOutputExitsOne: write failures surface as exit 1, not a
// truncated file reported as success.
func TestUnwritableOutputExitsOne(t *testing.T) {
	code, _, stderr := runCLI(t, "-name", "w1a", "-scale", "0.05",
		"-out", filepath.Join(t.TempDir(), "missing-dir", "x.svm"))
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr %q)", code, stderr)
	}
}
