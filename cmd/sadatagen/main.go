// Command sadatagen writes synthetic replicas of the paper's LIBSVM
// datasets (Tables II and IV) to disk in LIBSVM format, so the other
// tools can exercise file-based workflows.
//
// Example:
//
//	sadatagen -name news20 -scale 0.5 -out news20.svm
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"saco"
	"saco/internal/datagen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: it parses args on
// its own FlagSet, writes to the given streams, and returns the process
// exit code instead of calling os.Exit (the same shape as sasolve's).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sadatagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("name", "", "replica name (required); one of: "+strings.Join(datagen.ReplicaNames(), ", "))
		scale = fs.Float64("scale", 1, "dimension scale multiplier")
		seed  = fs.Uint64("seed", 42, "generation seed")
		out   = fs.String("out", "", "output path (required)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *name == "" || *out == "" {
		fmt.Fprintln(stderr, "sadatagen: -name and -out are required")
		fs.PrintDefaults()
		return 2
	}
	d, err := saco.Replica(*name, *scale, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "sadatagen: %v\n", err)
		return 1
	}
	a := d.AsCSR()
	if err := saco.SaveLIBSVM(*out, a, d.B); err != nil {
		fmt.Fprintf(stderr, "sadatagen: %v\n", err)
		return 1
	}
	m, n := d.Dims()
	fmt.Fprintf(stdout, "wrote %s: %d points, %d features, %d nonzeros (%.4g%%)\n",
		*out, m, n, d.NNZ(), 100*d.Density())
	return 0
}
