// Command sadatagen writes synthetic replicas of the paper's LIBSVM
// datasets (Tables II and IV) to disk in LIBSVM format, so the other
// tools can exercise file-based workflows.
//
// Example:
//
//	sadatagen -name news20 -scale 0.5 -out news20.svm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"saco"
	"saco/internal/datagen"
)

func main() {
	var (
		name  = flag.String("name", "", "replica name (required); one of: "+strings.Join(datagen.ReplicaNames(), ", "))
		scale = flag.Float64("scale", 1, "dimension scale multiplier")
		seed  = flag.Uint64("seed", 42, "generation seed")
		out   = flag.String("out", "", "output path (required)")
	)
	flag.Parse()
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "sadatagen: -name and -out are required")
		flag.PrintDefaults()
		os.Exit(2)
	}
	d, err := saco.Replica(*name, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sadatagen: %v\n", err)
		os.Exit(1)
	}
	a := d.AsCSR()
	if err := saco.SaveLIBSVM(*out, a, d.B); err != nil {
		fmt.Fprintf(os.Stderr, "sadatagen: %v\n", err)
		os.Exit(1)
	}
	m, n := d.Dims()
	fmt.Printf("wrote %s: %d points, %d features, %d nonzeros (%.4g%%)\n",
		*out, m, n, d.NNZ(), 100*d.Density())
}
