package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"saco/internal/dist"
	"saco/internal/metrics"
)

// healthServer is the per-rank operational surface (-health addr):
//
//	GET /healthz     200 while the process is alive
//	GET /readyz      200 once the world is joined and solving,
//	                 503 while dialing or parked at the rendezvous
//	GET /checkpoint  JSON of the newest completed checkpoint
//	                 (dist.CheckpointInfo), 404 before the first save
//	GET /metrics     Prometheus text exposition
//
// A nil *healthServer (no -health flag) is valid: every method is a
// no-op, so the solve path never branches on whether the surface is up.
type healthServer struct {
	ln          net.Listener
	srv         *http.Server
	ready       atomic.Bool
	last        atomic.Pointer[dist.CheckpointInfo]
	checkpoints *metrics.Counter
	restarts    *metrics.Counter
	epoch       *metrics.Gauge
	step        *metrics.Gauge
}

// newHealthServer binds addr and starts serving immediately — liveness
// must answer while the rank is still parked at the rendezvous. An
// empty addr returns (nil, nil): the surface is off.
func newHealthServer(addr string, rank int) (*healthServer, error) {
	if addr == "" {
		return nil, nil
	}
	h := &healthServer{}
	reg := metrics.NewRegistry()
	lbl := metrics.Label{Key: "rank", Value: fmt.Sprint(rank)}
	h.checkpoints = reg.Counter("saco_rank_checkpoints_total",
		"Checkpoints this rank has published.", lbl)
	h.restarts = reg.Counter("saco_rank_restarts_total",
		"Supervised world restarts after a lost peer.", lbl)
	h.epoch = reg.Gauge("saco_rank_epoch",
		"Control-plane epoch of the currently joined world.", lbl)
	h.step = reg.Gauge("saco_rank_checkpoint_step",
		"Inner iteration of the newest checkpoint.", lbl)
	reg.GaugeFunc("saco_rank_ready",
		"1 once the world is joined and solving, 0 otherwise.",
		func() float64 {
			if h.ready.Load() {
				return 1
			}
			return 0
		}, lbl)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !h.ready.Load() {
			http.Error(w, "joining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, _ *http.Request) {
		ck := h.last.Load()
		if ck == nil {
			http.Error(w, "no checkpoint yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(ck); err != nil {
			return // client went away mid-write; nothing to salvage
		}
	})
	mux.Handle("/metrics", reg.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("health listener on %s: %w", addr, err)
	}
	h.ln = ln
	h.srv = &http.Server{Handler: mux}
	go func() {
		// Serve returns http.ErrServerClosed on shutdown; any earlier
		// error just means the surface is gone, which /healthz's absence
		// already signals to the supervisor.
		_ = h.srv.Serve(ln)
	}()
	return h, nil
}

// onSave is the dist.Checkpoint.OnSave hook.
func (h *healthServer) onSave(i dist.CheckpointInfo) {
	if h == nil {
		return
	}
	h.last.Store(&i)
	h.checkpoints.Inc()
	h.step.Set(int64(i.Step))
}

func (h *healthServer) setReady(ready bool) {
	if h != nil {
		h.ready.Store(ready)
	}
}

func (h *healthServer) setEpoch(epoch int) {
	if h != nil {
		h.epoch.Set(int64(epoch))
	}
}

func (h *healthServer) noteRestart() {
	if h != nil {
		h.restarts.Inc()
	}
}

// addr returns the bound address ("" when the surface is off) — the
// :0 form resolves to the real port for tests.
func (h *healthServer) addr() string {
	if h == nil {
		return ""
	}
	return h.ln.Addr().String()
}

func (h *healthServer) shutdown() {
	if h == nil {
		return
	}
	_ = h.srv.Close() // best-effort teardown on exit
}
