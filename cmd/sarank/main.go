// Command sarank runs ONE rank of a distributed solve as its own OS
// process, connected to its peers over the TCP transport: the
// one-rank-per-process deployment of the same SPMD solver bodies the
// in-process drivers run as goroutines. Every process is started with
// identical flags except -rank; rank 0 listens at the rendezvous
// address and the others dial it (retrying, so start order does not
// matter). Trajectories are bitwise identical to the simulated backend:
// rank 0's "final objective" line byte-matches sasolve's.
//
// A 4-rank loopback CA-Lasso cluster:
//
//	for r in 0 1 2 3; do
//	  sarank -rank $r -size 4 -addr 127.0.0.1:7171 \
//	    -task lasso -data train.svm -lambda-frac 0.1 -mu 4 -s 8 -iters 2000 &
//	done; wait
//
// Multi-machine clusters additionally set -listen (a reachable
// interface for the mesh) and, behind NAT, -advertise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"saco"
	"saco/internal/dist"
	"saco/internal/mpi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks a bad invocation: run prints the flag defaults and
// exits 2, like flag's own parse failures.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// run is the whole program behind a testable seam: it parses args on
// its own FlagSet, writes to the given streams, and returns the process
// exit code instead of calling os.Exit. The in-process cluster tests
// call it once per rank on its own goroutine.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sarank", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rank       = fs.Int("rank", -1, "this process's rank in [0, size) (required)")
		size       = fs.Int("size", 0, "world size: total number of rank processes (required)")
		addr       = fs.String("addr", "", "rendezvous address; rank 0 listens on it, peers dial it (required)")
		listen     = fs.String("listen", "", "mesh listen address of a non-root rank (default 127.0.0.1:0; set a reachable interface for multi-machine runs)")
		advertise  = fs.String("advertise", "", "mesh address published to peers (default: the listener's own; set behind NAT)")
		timeout    = fs.Duration("timeout", 30*time.Second, "rendezvous timeout: how long to wait for the full world to assemble")
		dataPath   = fs.String("data", "", "LIBSVM input file (required; every rank reads it and slices its own block)")
		task       = fs.String("task", "lasso", "lasso or svm")
		iters      = fs.Int("iters", 1000, "iterations H")
		s          = fs.Int("s", 1, "recurrence unrolling parameter (1 = classical)")
		seed       = fs.Uint64("seed", 42, "sampling seed (must match across ranks: draws are replicated)")
		track      = fs.Int("track", 0, "trace convergence every N iterations (rank 0 prints it)")
		lambdaFrac = fs.Float64("lambda-frac", 0.1, "lasso: lambda as a fraction of ||A'b||_inf")
		mu         = fs.Int("mu", 1, "lasso: block size")
		accel      = fs.Bool("accel", false, "lasso: Nesterov acceleration")
		lambda     = fs.Float64("lambda", 1, "svm: penalty parameter")
		loss       = fs.String("loss", "l1", "svm: l1 (hinge) or l2 (squared hinge)")
		tol        = fs.Float64("tol", 0, "svm: stop at this duality gap")
		machine    = fs.String("machine", "cray", "cost model charged to the virtual clocks: cray, ethernet, spark")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	err := solve(stdout, &options{
		rank: *rank, size: *size, addr: *addr, listen: *listen,
		advertise: *advertise, timeout: *timeout, dataPath: *dataPath,
		task: *task, iters: *iters, s: *s, seed: *seed, track: *track,
		lambdaFrac: *lambdaFrac, mu: *mu, accel: *accel, lambda: *lambda,
		loss: *loss, tol: *tol, machine: *machine,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sarank: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fs.PrintDefaults()
			return 2
		}
		return 1
	}
	return 0
}

// options carries the parsed flags into solve.
type options struct {
	rank, size              int
	addr, listen, advertise string
	timeout                 time.Duration
	dataPath, task          string
	iters, s, track, mu     int
	seed                    uint64
	lambdaFrac, lambda, tol float64
	accel                   bool
	loss, machine           string
}

// solve joins the world, runs this rank's share of the solve, and (on
// rank 0) reports the result in sasolve's output format, so a cluster
// run byte-diffs against the simulated backend.
func solve(stdout io.Writer, o *options) (err error) {
	if o.size <= 0 || o.rank < 0 || o.rank >= o.size {
		return usageError{fmt.Sprintf("-rank %d -size %d: need 0 <= rank < size", o.rank, o.size)}
	}
	if o.addr == "" {
		return usageError{"-addr is required"}
	}
	if o.dataPath == "" {
		return usageError{"-data is required"}
	}
	var m saco.Machine
	switch o.machine {
	case "cray":
		m = saco.CrayXC30()
	case "ethernet":
		m = saco.EthernetCluster()
	case "spark":
		m = saco.SparkLike()
	default:
		return usageError{fmt.Sprintf("unknown machine %q (cray, ethernet, spark)", o.machine)}
	}
	switch o.task {
	case "lasso", "svm":
	default:
		return usageError{fmt.Sprintf("unknown task %q (lasso, svm)", o.task)}
	}

	a, b, err := saco.LoadLIBSVM(o.dataPath, 0)
	if err != nil {
		return err
	}
	if o.rank == 0 {
		fmt.Fprintf(stdout, "loaded %s: %d points, %d features, %.4g%% nonzero\n",
			o.dataPath, a.M, a.N, 100*a.Density())
	}

	t, err := mpi.DialTCP(context.Background(), o.rank, o.size, o.addr, &mpi.TCPOptions{
		RendezvousTimeout: o.timeout,
		ListenAddr:        o.listen,
		AdvertiseAddr:     o.advertise,
	})
	if err != nil {
		return err
	}
	// A transport close failure is a real deployment signal (a peer hung
	// up mid-teardown, a socket leaked): surface it unless the solve
	// already failed for a more interesting reason.
	defer func() {
		if cerr := t.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing transport: %w", cerr)
		}
	}()
	c := mpi.NewComm(t, m, 1)
	src := dist.CSRSource{A: a}
	cl := dist.Options{P: o.size, Machine: m}

	switch o.task {
	case "lasso":
		lam := o.lambdaFrac * saco.LambdaMax(a.ToCSC(), b)
		opt := saco.LassoOptions{
			Lambda: lam, BlockSize: o.mu, Iters: o.iters, S: o.s,
			Accelerated: o.accel, Seed: o.seed, TrackEvery: o.track,
		}
		res, err := dist.LassoRank(c, src, b, opt, cl)
		if err != nil {
			return err
		}
		if o.rank == 0 {
			for _, p := range res.Trace {
				fmt.Fprintf(stdout, "iter %8d  objective %.6e\n", p.Iter, p.Value)
			}
			reportRank(stdout, c, o)
			fmt.Fprintf(stdout, "final objective %.6e  (lambda=%.4g)\n", res.Objective, lam)
		}
	case "svm":
		l := saco.SVML1
		if o.loss == "l2" {
			l = saco.SVML2
		}
		opt := saco.SVMOptions{
			Lambda: o.lambda, Loss: l, Iters: o.iters, S: o.s, Seed: o.seed,
			TrackEvery: o.track, Tol: o.tol,
		}
		res, err := dist.SVMRank(c, src, b, opt, cl)
		if err != nil {
			return err
		}
		if o.rank == 0 {
			for _, p := range res.Trace {
				fmt.Fprintf(stdout, "iter %8d  gap %.6e\n", p.Iter, p.Value)
			}
			reportRank(stdout, c, o)
			fmt.Fprintf(stdout, "final duality gap %.6e after %d iterations\n", res.Gap, res.Iters)
		}
	}
	return nil
}

// reportRank prints rank 0's local cost accounting. A process only
// knows its own rank's clocks (mpi.Stats.Local), so unlike sasolve's
// whole-world line this reports per-rank numbers; the modeled time is
// still the world's — the clocks piggyback on every message, so rank
// 0's clock is the critical path through its collectives.
func reportRank(stdout io.Writer, c *mpi.Comm, o *options) {
	st := c.RankStats()
	fmt.Fprintf(stdout, "distributed tcp rank %d/%d (%s): modeled time %.4es, %d messages, %d words sent\n",
		o.rank, o.size, c.Machine().Name, st.Clock, st.Msgs, st.Words)
}
