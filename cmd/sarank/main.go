// Command sarank runs ONE rank of a distributed solve as its own OS
// process, connected to its peers over the TCP transport: the
// one-rank-per-process deployment of the same SPMD solver bodies the
// in-process drivers run as goroutines. Every process is started with
// identical flags except -rank; rank 0 listens at the rendezvous
// address and the others dial it (retrying, so start order does not
// matter). Trajectories are bitwise identical to the simulated backend:
// rank 0's "final objective" line byte-matches sasolve's.
//
// A 4-rank loopback CA-Lasso cluster:
//
//	for r in 0 1 2 3; do
//	  sarank -rank $r -size 4 -addr 127.0.0.1:7171 \
//	    -task lasso -data train.svm -lambda-frac 0.1 -mu 4 -s 8 -iters 2000 &
//	done; wait
//
// Multi-machine clusters additionally set -listen (a reachable
// interface for the mesh) and, behind NAT, -advertise.
//
// Long runs add the operational flags: -ckpt-dir makes every rank save
// its solver state to CRC-checked .sack files at s-step boundaries,
// -max-restarts lets survivors rejoin at a higher epoch and resume from
// the agreed checkpoint when a peer is lost, a replacement process is
// started with the same flags plus -resume, and -health serves
// /healthz, /readyz, /checkpoint and /metrics for the supervisor.
// Recovery is exact: the resumed trajectory is bitwise identical to an
// uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"saco"
	"saco/internal/dist"
	"saco/internal/mpi"
	"saco/internal/mpi/faulty"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks a bad invocation: run prints the flag defaults and
// exits 2, like flag's own parse failures.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// run is the whole program behind a testable seam: it parses args on
// its own FlagSet, writes to the given streams, and returns the process
// exit code instead of calling os.Exit. The in-process cluster tests
// call it once per rank on its own goroutine.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sarank", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rank       = fs.Int("rank", -1, "this process's rank in [0, size) (required)")
		size       = fs.Int("size", 0, "world size: total number of rank processes (required)")
		addr       = fs.String("addr", "", "rendezvous address; rank 0 listens on it, peers dial it (required)")
		listen     = fs.String("listen", "", "mesh listen address of a non-root rank (default 127.0.0.1:0; set a reachable interface for multi-machine runs)")
		advertise  = fs.String("advertise", "", "mesh address published to peers (default: the listener's own; set behind NAT)")
		timeout    = fs.Duration("timeout", 30*time.Second, "rendezvous timeout: how long to wait for the full world to assemble")
		dataPath   = fs.String("data", "", "LIBSVM input file (required; every rank reads it and slices its own block)")
		task       = fs.String("task", "lasso", "lasso or svm")
		iters      = fs.Int("iters", 1000, "iterations H")
		s          = fs.Int("s", 1, "recurrence unrolling parameter (1 = classical)")
		seed       = fs.Uint64("seed", 42, "sampling seed (must match across ranks: draws are replicated)")
		track      = fs.Int("track", 0, "trace convergence every N iterations (rank 0 prints it)")
		lambdaFrac = fs.Float64("lambda-frac", 0.1, "lasso: lambda as a fraction of ||A'b||_inf")
		mu         = fs.Int("mu", 1, "lasso: block size")
		accel      = fs.Bool("accel", false, "lasso: Nesterov acceleration")
		lambda     = fs.Float64("lambda", 1, "svm: penalty parameter")
		loss       = fs.String("loss", "l1", "svm: l1 (hinge) or l2 (squared hinge)")
		tol        = fs.Float64("tol", 0, "svm: stop at this duality gap")
		machine    = fs.String("machine", "cray", "cost model charged to the virtual clocks: cray, ethernet, spark")
		ckptDir    = fs.String("ckpt-dir", "", "directory for this rank's .sack checkpoints (enables checkpointing)")
		ckptEvery  = fs.Int("ckpt-every", 1, "save a checkpoint every N outer batches")
		resume     = fs.Bool("resume", false, "reload the agreed checkpoint and rejoin the mesh (requires -ckpt-dir)")
		maxRestart = fs.Int("max-restarts", 0, "rejoin and resume up to N times after losing a peer (requires -ckpt-dir)")
		health     = fs.String("health", "", "serve /healthz, /readyz, /checkpoint, /metrics on this address")
		faultKill  = fs.Int("fault-kill-send", 0, "fault drill: kill this rank's transport before its Nth solver send, once (exercises checkpoint recovery)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	err := solve(stdout, stderr, &options{
		rank: *rank, size: *size, addr: *addr, listen: *listen,
		advertise: *advertise, timeout: *timeout, dataPath: *dataPath,
		task: *task, iters: *iters, s: *s, seed: *seed, track: *track,
		lambdaFrac: *lambdaFrac, mu: *mu, accel: *accel, lambda: *lambda,
		loss: *loss, tol: *tol, machine: *machine,
		ckptDir: *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
		maxRestarts: *maxRestart, health: *health, faultKillSend: *faultKill,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sarank: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fs.PrintDefaults()
			return 2
		}
		return 1
	}
	return 0
}

// options carries the parsed flags into solve.
type options struct {
	rank, size              int
	addr, listen, advertise string
	timeout                 time.Duration
	dataPath, task          string
	iters, s, track, mu     int
	seed                    uint64
	lambdaFrac, lambda, tol float64
	accel                   bool
	loss, machine           string
	ckptDir, health         string
	ckptEvery, maxRestarts  int
	resume                  bool
	faultKillSend           int
}

// solve joins the world, runs this rank's share of the solve (rejoining
// and resuming from checkpoints when supervision is enabled), and on
// rank 0 reports the result in sasolve's output format, so a cluster
// run byte-diffs against the simulated backend.
func solve(stdout, stderr io.Writer, o *options) error {
	if o.size <= 0 || o.rank < 0 || o.rank >= o.size {
		return usageError{fmt.Sprintf("-rank %d -size %d: need 0 <= rank < size", o.rank, o.size)}
	}
	if o.addr == "" {
		return usageError{"-addr is required"}
	}
	if o.dataPath == "" {
		return usageError{"-data is required"}
	}
	if o.ckptDir == "" && (o.resume || o.maxRestarts > 0) {
		return usageError{"-resume and -max-restarts require -ckpt-dir"}
	}
	var m saco.Machine
	switch o.machine {
	case "cray":
		m = saco.CrayXC30()
	case "ethernet":
		m = saco.EthernetCluster()
	case "spark":
		m = saco.SparkLike()
	default:
		return usageError{fmt.Sprintf("unknown machine %q (cray, ethernet, spark)", o.machine)}
	}
	switch o.task {
	case "lasso", "svm":
	default:
		return usageError{fmt.Sprintf("unknown task %q (lasso, svm)", o.task)}
	}

	a, b, err := saco.LoadLIBSVM(o.dataPath, 0)
	if err != nil {
		return err
	}
	if o.rank == 0 {
		fmt.Fprintf(stdout, "loaded %s: %d points, %d features, %.4g%% nonzero\n",
			o.dataPath, a.M, a.N, 100*a.Density())
	}

	hs, err := newHealthServer(o.health, o.rank)
	if err != nil {
		return err
	}
	defer hs.shutdown()

	// The supervision loop: join, solve, and on a recoverable peer loss
	// rejoin at a higher epoch and resume from the agreed checkpoint. A
	// process started with -resume does not know the surviving world's
	// epoch, so it dials with it unknown (-1) and adopts what the
	// rendezvous reports.
	epoch := 0
	if o.resume {
		epoch = -1
	}
	// The fault drill is one-shot across the whole supervised run, like
	// a real process killed once and then restarted healthy.
	var inj *faulty.Injector
	if o.faultKillSend > 0 {
		inj = faulty.New(faulty.Plan{Rank: o.rank, KillAtSend: o.faultKillSend})
	}
	resume := o.resume
	for attempt := 0; ; attempt++ {
		err := o.joinAndSolve(stdout, a, b, m, &epoch, resume, inj, hs)
		if err == nil {
			return nil
		}
		if o.maxRestarts <= 0 || attempt >= o.maxRestarts || !dist.Recoverable(err) {
			return err
		}
		fmt.Fprintf(stderr, "sarank: rank %d lost a peer (%v); rejoining at epoch %d to resume (restart %d/%d)\n",
			o.rank, err, epoch, attempt+1, o.maxRestarts)
		hs.noteRestart()
		resume = true
		time.Sleep(dist.RestartBackoff(attempt + 1))
	}
}

// joinAndSolve runs one incarnation of this rank: rendezvous at *epoch,
// solve (resuming from the agreed checkpoint when asked), and tear the
// transport down. On return *epoch is one above the joined world's, so
// the next incarnation outranks any zombie of this one.
func (o *options) joinAndSolve(stdout io.Writer, a *saco.CSR, b []float64, m saco.Machine,
	epoch *int, resume bool, inj *faulty.Injector, hs *healthServer) (err error) {
	t, err := mpi.DialTCP(context.Background(), o.rank, o.size, o.addr, &mpi.TCPOptions{
		RendezvousTimeout: o.timeout,
		ListenAddr:        o.listen,
		AdvertiseAddr:     o.advertise,
		Epoch:             *epoch,
	})
	if err != nil {
		return err
	}
	// Read the agreed epoch off the raw endpoint before any fault-drill
	// wrapper hides the accessor.
	joined := mpi.TransportEpoch(t)
	*epoch = joined + 1
	hs.setEpoch(joined)
	hs.setReady(true)
	if inj != nil {
		t = inj.Wrap(o.rank, t)
	}
	defer hs.setReady(false)
	// A transport close failure is a real deployment signal (a peer hung
	// up mid-teardown, a socket leaked): surface it unless the solve
	// already failed for a more interesting reason.
	defer func() {
		if cerr := t.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing transport: %w", cerr)
		}
	}()
	c := mpi.NewComm(t, m, 1)
	src := dist.CSRSource{A: a}
	cl := dist.Options{P: o.size, Machine: m}
	if o.ckptDir != "" {
		cl.Checkpoint = &dist.Checkpoint{
			Dir: o.ckptDir, Every: o.ckptEvery, Resume: resume, OnSave: hs.onSave,
		}
	}

	switch o.task {
	case "lasso":
		lam := o.lambdaFrac * saco.LambdaMax(a.ToCSC(), b)
		opt := saco.LassoOptions{
			Lambda: lam, BlockSize: o.mu, Iters: o.iters, S: o.s,
			Accelerated: o.accel, Seed: o.seed, TrackEvery: o.track,
		}
		res, err := dist.LassoRank(c, src, b, opt, cl)
		if err != nil {
			return err
		}
		if o.rank == 0 {
			for _, p := range res.Trace {
				fmt.Fprintf(stdout, "iter %8d  objective %.6e\n", p.Iter, p.Value)
			}
			reportRank(stdout, c, o)
			fmt.Fprintf(stdout, "final objective %.6e  (lambda=%.4g)\n", res.Objective, lam)
		}
	case "svm":
		l := saco.SVML1
		if o.loss == "l2" {
			l = saco.SVML2
		}
		opt := saco.SVMOptions{
			Lambda: o.lambda, Loss: l, Iters: o.iters, S: o.s, Seed: o.seed,
			TrackEvery: o.track, Tol: o.tol,
		}
		res, err := dist.SVMRank(c, src, b, opt, cl)
		if err != nil {
			return err
		}
		if o.rank == 0 {
			for _, p := range res.Trace {
				fmt.Fprintf(stdout, "iter %8d  gap %.6e\n", p.Iter, p.Value)
			}
			reportRank(stdout, c, o)
			fmt.Fprintf(stdout, "final duality gap %.6e after %d iterations\n", res.Gap, res.Iters)
		}
	}
	return nil
}

// reportRank prints rank 0's local cost accounting. A process only
// knows its own rank's clocks (mpi.Stats.Local), so unlike sasolve's
// whole-world line this reports per-rank numbers; the modeled time is
// still the world's — the clocks piggyback on every message, so rank
// 0's clock is the critical path through its collectives.
func reportRank(stdout io.Writer, c *mpi.Comm, o *options) {
	st := c.RankStats()
	fmt.Fprintf(stdout, "distributed tcp rank %d/%d (%s): modeled time %.4es, %d messages, %d words sent\n",
		o.rank, o.size, c.Machine().Name, st.Clock, st.Msgs, st.Words)
}
