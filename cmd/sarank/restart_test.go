package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"saco"
	"saco/internal/dist"
)

// clusterWith is cluster() plus per-rank extra flags — the kill drill
// and the resume flow need one rank configured differently.
func clusterWith(t *testing.T, p int, addr string, common []string, perRank map[int][]string) (string, []string) {
	t.Helper()
	outs := make([]bytes.Buffer, p)
	errs := make([]bytes.Buffer, p)
	codes := make([]int, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			args := append([]string{
				"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p), "-addr", addr,
			}, common...)
			args = append(args, perRank[r]...)
			codes[r] = run(args, &outs[r], &errs[r])
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if codes[r] != 0 {
			t.Fatalf("rank %d exited %d: %s", r, codes[r], errs[r].String())
		}
	}
	stderrs := make([]string, p)
	for r := range stderrs {
		stderrs[r] = errs[r].String()
	}
	return outs[0].String(), stderrs
}

// TestClusterKillRestartResume: a rank whose transport is killed
// mid-solve (the -fault-kill-send drill) must rejoin at a higher epoch,
// resume from the agreed checkpoint together with the surviving ranks,
// and still produce a "final objective" line byte-identical to the
// uninterrupted simulated backend.
func TestClusterKillRestartResume(t *testing.T) {
	path, _ := writeDataset(t, "sarank-restart", false)
	a, b, err := saco.LoadLIBSVM(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	lam := 0.1 * saco.LambdaMax(a.ToCSC(), b)
	opt := saco.LassoOptions{Lambda: lam, BlockSize: 4, Iters: 400, S: 8, Seed: 7}
	ref, err := saco.DistLasso(saco.MatrixSource(a), b, opt, saco.Cluster{P: 3, Machine: saco.CrayXC30()})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("final objective %.6e  (lambda=%.4g)", ref.Objective, lam)

	common := []string{
		"-task", "lasso", "-data", path,
		"-lambda-frac", "0.1", "-mu", "4", "-s", "8", "-iters", "400", "-seed", "7",
		"-ckpt-dir", t.TempDir(), "-ckpt-every", "2", "-max-restarts", "3",
	}
	out, stderrs := clusterWith(t, 3, freeLoopbackAddr(t), common,
		map[int][]string{1: {"-fault-kill-send", "25"}})
	if got := lineWith(t, out, "final objective"); got != want {
		t.Fatalf("objective line after kill+restart differs from simulated backend:\n tcp: %s\n sim: %s", got, want)
	}
	// Every rank must have gone through at least one supervised rejoin.
	for r, se := range stderrs {
		if !strings.Contains(se, "rejoining at epoch") {
			t.Fatalf("rank %d never rejoined; stderr:\n%s", r, se)
		}
	}
}

// TestClusterResumeFlag: a cluster restarted with -resume (the
// restarted-process flow: world epoch unknown) reloads the agreed
// checkpoint and reports the same final line as the original run.
func TestClusterResumeFlag(t *testing.T) {
	path, _ := writeDataset(t, "sarank-resume", false)
	dir := t.TempDir()
	common := []string{
		"-task", "lasso", "-data", path,
		"-lambda-frac", "0.1", "-mu", "4", "-s", "8", "-iters", "240", "-seed", "7",
		"-ckpt-dir", dir,
	}
	first, _ := clusterWith(t, 3, freeLoopbackAddr(t), common, nil)
	wantLine := lineWith(t, first, "final objective")

	second, _ := clusterWith(t, 3, freeLoopbackAddr(t), append(common, "-resume"), nil)
	if got := lineWith(t, second, "final objective"); got != wantLine {
		t.Fatalf("-resume run differs from original:\n resume: %s\n  first: %s", got, wantLine)
	}
}

// TestHealthSurface exercises the -health endpoints against a live
// server: liveness always up, readiness flipping with the join state,
// the newest checkpoint as JSON, and the Prometheus counters.
func TestHealthSurface(t *testing.T) {
	hs, err := newHealthServer("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.shutdown()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + hs.addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 503 {
		t.Fatalf("/readyz before join = %d, want 503", code)
	}
	if code, _ := get("/checkpoint"); code != 404 {
		t.Fatalf("/checkpoint before any save = %d, want 404", code)
	}

	hs.setReady(true)
	hs.setEpoch(3)
	hs.onSave(dist.CheckpointInfo{Rank: 2, Step: 48, Batches: 6, Path: "/tmp/rank-2-a.sack"})
	hs.noteRestart()

	if code, body := get("/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after join = %d %q", code, body)
	}
	code, body := get("/checkpoint")
	if code != 200 {
		t.Fatalf("/checkpoint = %d", code)
	}
	for _, frag := range []string{`"rank":2`, `"step":48`, `"batches":6`, `"path":"/tmp/rank-2-a.sack"`} {
		if !strings.Contains(body, frag) {
			t.Fatalf("/checkpoint body missing %s:\n%s", frag, body)
		}
	}
	_, metricsBody := get("/metrics")
	for _, frag := range []string{
		`saco_rank_checkpoints_total{rank="2"} 1`,
		`saco_rank_restarts_total{rank="2"} 1`,
		`saco_rank_epoch{rank="2"} 3`,
		`saco_rank_checkpoint_step{rank="2"} 48`,
		`saco_rank_ready{rank="2"} 1`,
	} {
		if !strings.Contains(metricsBody, frag) {
			t.Fatalf("/metrics missing %q:\n%s", frag, metricsBody)
		}
	}

	hs.setReady(false)
	if code, _ := get("/readyz"); code != 503 {
		t.Fatalf("/readyz after teardown = %d, want 503", code)
	}
}

// TestSupervisionUsageErrors: the supervision flags demand a checkpoint
// directory — restarting without state would silently diverge.
func TestSupervisionUsageErrors(t *testing.T) {
	for _, extra := range [][]string{{"-resume"}, {"-max-restarts", "2"}} {
		args := append([]string{"-rank", "0", "-size", "2", "-addr", "x", "-data", "y"}, extra...)
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: exit %d, want 2; stderr:\n%s", extra, code, stderr)
		}
		if !strings.Contains(stderr, "require -ckpt-dir") {
			t.Fatalf("%v: stderr missing requirement:\n%s", extra, stderr)
		}
	}
}
