package main

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"saco"
)

// runCLI invokes the program seam once and returns its exit code and
// streams.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// freeLoopbackAddr reserves an ephemeral loopback port and releases it
// for the cluster's rendezvous. The tiny reuse window is harmless on a
// loopback test host.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// writeDataset renders a synthetic regression problem to a LIBSVM file
// every rank process (here: goroutine) loads.
func writeDataset(t *testing.T, name string, classification bool) (string, *saco.Dataset) {
	t.Helper()
	var d *saco.Dataset
	if classification {
		d = saco.Classification(name, 29, 160, 80, 0.2, 0.1)
	} else {
		d = saco.Regression(name, 23, 200, 100, 0.15, 6, 0.05)
	}
	path := filepath.Join(t.TempDir(), name+".svm")
	if err := saco.SaveLIBSVM(path, d.AsCSR(), d.B); err != nil {
		t.Fatal(err)
	}
	return path, d
}

// cluster runs one sarank invocation per rank concurrently (each on its
// own goroutine, exactly the per-process flag set) and returns rank 0's
// stdout.
func cluster(t *testing.T, p int, addr string, common []string) string {
	t.Helper()
	outs := make([]bytes.Buffer, p)
	errs := make([]bytes.Buffer, p)
	codes := make([]int, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			args := append([]string{
				"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p), "-addr", addr,
			}, common...)
			codes[r] = run(args, &outs[r], &errs[r])
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if codes[r] != 0 {
			t.Fatalf("rank %d exited %d: %s", r, codes[r], errs[r].String())
		}
	}
	return outs[0].String()
}

// lineWith extracts the unique output line containing the marker.
func lineWith(t *testing.T, out, marker string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, marker) {
			return line
		}
	}
	t.Fatalf("no %q line in output:\n%s", marker, out)
	return ""
}

// TestClusterLassoMatchesSimulatedObjective is the acceptance test of
// the multi-process deployment: a 4-rank loopback CA-Lasso cluster must
// produce a "final objective" line byte-identical to the simulated
// backend's (the same line sasolve -simulate prints and CI byte-diffs).
func TestClusterLassoMatchesSimulatedObjective(t *testing.T) {
	path, _ := writeDataset(t, "sarank-lasso", false)
	a, b, err := saco.LoadLIBSVM(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	lam := 0.1 * saco.LambdaMax(a.ToCSC(), b)
	opt := saco.LassoOptions{
		Lambda: lam, BlockSize: 4, Iters: 400, S: 8, Accelerated: true, Seed: 7,
	}
	ref, err := saco.DistLasso(saco.MatrixSource(a), b, opt, saco.Cluster{P: 4, Machine: saco.CrayXC30()})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("final objective %.6e  (lambda=%.4g)", ref.Objective, lam)

	out := cluster(t, 4, freeLoopbackAddr(t), []string{
		"-task", "lasso", "-data", path,
		"-lambda-frac", "0.1", "-mu", "4", "-s", "8", "-accel", "-iters", "400", "-seed", "7",
	})
	if got := lineWith(t, out, "final objective"); got != want {
		t.Fatalf("objective line differs from simulated backend:\n tcp: %s\n sim: %s", got, want)
	}
	if !strings.Contains(out, "distributed tcp rank 0/4") {
		t.Fatalf("missing rank stats line:\n%s", out)
	}
}

// TestClusterSVMMatchesSimulatedGap is the column-partitioned twin over
// the dual SVM solver.
func TestClusterSVMMatchesSimulatedGap(t *testing.T) {
	path, _ := writeDataset(t, "sarank-svm", true)
	a, b, err := saco.LoadLIBSVM(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := saco.SVMOptions{Lambda: 1e-3, Iters: 300, S: 8, Seed: 3}
	ref, err := saco.DistSVM(saco.MatrixSource(a), b, opt, saco.Cluster{P: 3, Machine: saco.CrayXC30()})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("final duality gap %.6e after %d iterations", ref.Gap, ref.Iters)

	out := cluster(t, 3, freeLoopbackAddr(t), []string{
		"-task", "svm", "-data", path,
		"-lambda", "1e-3", "-s", "8", "-iters", "300", "-seed", "3",
	})
	if got := lineWith(t, out, "final duality gap"); got != want {
		t.Fatalf("gap line differs from simulated backend:\n tcp: %s\n sim: %s", got, want)
	}
}

// TestUsageErrors exercises the exit-2 validation paths.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad rank", []string{"-rank", "4", "-size", "4", "-addr", "x", "-data", "y"}, "need 0 <= rank < size"},
		{"no addr", []string{"-rank", "0", "-size", "2", "-data", "y"}, "-addr is required"},
		{"no data", []string{"-rank", "0", "-size", "2", "-addr", "x"}, "-data is required"},
		{"bad machine", []string{"-rank", "0", "-size", "2", "-addr", "x", "-data", "y", "-machine", "abacus"}, `unknown machine "abacus"`},
		{"bad task", []string{"-rank", "0", "-size", "2", "-addr", "x", "-data", "y", "-task", "ridge"}, `unknown task "ridge"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}
