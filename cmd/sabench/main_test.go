package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTrajectoryRoundTrip: -out writes a one-entry JSON array with the
// documented fields, and -append grows it by one comparable point.
func TestTrajectoryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	path := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-short", "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	entries := readTrajectory(t, path)
	if len(entries) != 1 {
		t.Fatalf("%d entries after first run", len(entries))
	}
	e := entries[0]
	if e.Schema != 1 || e.Date == "" || e.GOARCH == "" || e.Dispatched == "" {
		t.Fatalf("entry provenance incomplete: %+v", e)
	}
	if len(e.Kernels) == 0 {
		t.Fatal("no kernel points recorded")
	}
	for _, p := range e.Kernels {
		if p.ScalarNsOp <= 0 || p.DispatchNsOp <= 0 || p.Speedup <= 0 {
			t.Fatalf("kernel point %q not measured: %+v", p.Bench, p)
		}
	}
	if e.Solver == nil || e.Solver.ScalarMs <= 0 || e.Solver.DispatchMs <= 0 {
		t.Fatalf("solver point missing or unmeasured: %+v", e.Solver)
	}
	if e.Serve == nil || e.Serve.RawReqS <= 0 || e.Serve.AdmReqS <= 0 ||
		e.Serve.RawP99Ms <= 0 || e.Serve.AdmP99Ms <= 0 {
		t.Fatalf("serving point missing or unmeasured: %+v", e.Serve)
	}
	if !strings.Contains(out.String(), "trajectory entry written") {
		t.Fatalf("no write confirmation in output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"-short", "-out", path, "-append"}, &out, &errb); code != 0 {
		t.Fatalf("append exit %d: %s", code, errb.String())
	}
	if entries := readTrajectory(t, path); len(entries) != 2 {
		t.Fatalf("%d entries after append", len(entries))
	}
}

// TestCheckGate exercises the -check path with a threshold no machine
// can fail, so the gating code runs without depending on timing luck.
func TestCheckGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-short", "-check", "-max-slowdown", "1000"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s / %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "check passed") {
		t.Fatalf("no check verdict: %q", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown flag", code)
	}
}

// TestAppendRejectsGarbage: -append over a non-trajectory file must
// fail loudly rather than overwrite it.
func TestAppendRejectsGarbage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	path := filepath.Join(t.TempDir(), "notes.json")
	if err := os.WriteFile(path, []byte(`{"hello": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-short", "-out", path, "-append"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d over garbage trajectory", code)
	}
	if !strings.Contains(errb.String(), "not a JSON array") {
		t.Fatalf("unhelpful error: %q", errb.String())
	}
	if data, _ := os.ReadFile(path); !strings.Contains(string(data), "hello") {
		t.Fatal("garbage file was clobbered")
	}
}

func readTrajectory(t *testing.T, path string) []benchEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []benchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("trajectory does not parse: %v", err)
	}
	return entries
}
