// Command sabench times the internal/simd kernels and a solver run,
// scalar set against the dispatched default, and records the result as
// one entry of the repository's benchmark trajectory.
//
// The trajectory file (BENCH_kernels.json at the repo root) is a JSON
// array of entries, newest last. Each entry is:
//
//	{
//	  "schema": 1,               // bump on incompatible field changes
//	  "date": "2026-08-08",      // UTC run date
//	  "go": "go1.24.0",
//	  "goos": "linux", "goarch": "amd64",
//	  "maxprocs": 1,
//	  "cpu_avx2": true,          // CPU capability, not the choice made
//	  "kernel_sets": [...],      // every set available on this machine
//	  "dispatched": "avx2",      // the set the comparison ran against
//	  "short": false,            // true = reduced sizes/budgets (CI)
//	  "kernels": [               // one point per kernel microbenchmark
//	    {"bench": "axpy-65536", "n": 65536,
//	     "scalar_ns_op": 31415.9,     // best-of-trials, calibrated reps
//	     "dispatched_ns_op": 8234.1,
//	     "reassoc_ns_op": 7999.0,     // opt-in set, reductions only
//	     "speedup": 3.81},            // scalar / dispatched
//	    ...
//	  ],
//	  "solver": {"bench": "lasso-2048x1024", "scalar_ms": ...,
//	             "dispatched_ms": ..., "speedup": ...},
//	  "serve": {"bench": "serve-predict-4096", "clients": ...,
//	            "p99_budget_ms": 5,            // admission queue-delay budget
//	            "raw_req_s": ..., "raw_p99_ms": ...,          // unbounded queue
//	            "admission_req_s": ..., "admission_p99_ms": ...,
//	            "admission_shed_rate": ...}    // fraction answered 429
//	}
//
// Future PRs append comparable points with -append; points are only
// comparable within a machine class, so the entry carries enough
// provenance (arch, AVX2, GOMAXPROCS, short) to group them.
//
// Usage:
//
//	sabench                       # print the comparison table
//	sabench -out BENCH_kernels.json -append   # record a trajectory entry
//	sabench -check -short         # CI gate: dispatched must not be
//	                              # >5% slower than scalar on any kernel
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"saco"
	"saco/internal/datagen"
	"saco/internal/simd"
)

type kernelPoint struct {
	Bench        string  `json:"bench"`
	N            int     `json:"n"`
	ScalarNsOp   float64 `json:"scalar_ns_op"`
	DispatchNsOp float64 `json:"dispatched_ns_op"`
	ReassocNsOp  float64 `json:"reassoc_ns_op,omitempty"`
	Speedup      float64 `json:"speedup"`
}

type solverPoint struct {
	Bench      string  `json:"bench"`
	ScalarMs   float64 `json:"scalar_ms"`
	DispatchMs float64 `json:"dispatched_ms"`
	Speedup    float64 `json:"speedup"`
}

type benchEntry struct {
	Schema     int           `json:"schema"`
	Date       string        `json:"date"`
	Go         string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	MaxProcs   int           `json:"maxprocs"`
	CPUAVX2    bool          `json:"cpu_avx2"`
	KernelSets []string      `json:"kernel_sets"`
	Dispatched string        `json:"dispatched"`
	Short      bool          `json:"short,omitempty"`
	Kernels    []kernelPoint `json:"kernels"`
	Solver     *solverPoint  `json:"solver,omitempty"`
	Serve      *servePoint   `json:"serve,omitempty"`
}

type options struct {
	short       bool
	check       bool
	outPath     string
	appendOut   bool
	trials      int
	budget      time.Duration
	maxSlowdown float64
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.BoolVar(&o.short, "short", false, "reduced sizes and budgets (CI smoke)")
	fs.BoolVar(&o.check, "check", false, "exit 1 if the dispatched set is slower than scalar beyond -max-slowdown on any kernel bench")
	fs.StringVar(&o.outPath, "out", "", "write a trajectory entry to this JSON file")
	fs.BoolVar(&o.appendOut, "append", false, "append to an existing -out trajectory instead of overwriting")
	fs.IntVar(&o.trials, "trials", 5, "timing trials per point (best is kept)")
	fs.DurationVar(&o.budget, "budget", 20*time.Millisecond, "per-trial timing budget (reps are calibrated to fill it)")
	fs.Float64Var(&o.maxSlowdown, "max-slowdown", 1.05, "-check threshold: dispatched_ns_op/scalar_ns_op must stay below this")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.short {
		// Shrink problem sizes (kernelBenches/solverBench) but keep the
		// per-trial budget large enough that a 5% -check gate measures
		// the kernel, not scheduler noise.
		o.budget = 5 * time.Millisecond
	}
	if err := bench(o, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "sabench: %v\n", err)
		return 1
	}
	return 0
}

func bench(o options, stdout, stderr io.Writer) error {
	if w := saco.KernelWarning(); w != "" {
		fmt.Fprintf(stderr, "warning: %s\n", w)
	}
	scalar, ok := simd.Lookup("scalar")
	if !ok {
		return fmt.Errorf("no scalar reference set registered")
	}
	dispatched := simd.Active()
	reassoc, _ := simd.Lookup("reassoc")

	entry := benchEntry{
		Schema:     1,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		MaxProcs:   runtime.GOMAXPROCS(0),
		CPUAVX2:    simd.HasAVX2(),
		KernelSets: simd.Names(),
		Dispatched: dispatched.Name(),
		Short:      o.short,
	}

	fmt.Fprintf(stdout, "kernels: scalar vs %s (best of %d trials, %v budget)\n",
		dispatched.Name(), o.trials, o.budget)
	for _, kb := range kernelBenches(o.short) {
		p := kernelPoint{Bench: kb.name, N: kb.n}
		bodies := []func(int){kb.body(scalar), kb.body(dispatched)}
		if kb.reduction && reassoc != nil {
			bodies = append(bodies, kb.body(reassoc))
		}
		ns := measure(bodies, o.budget, o.trials)
		p.ScalarNsOp, p.DispatchNsOp = ns[0], ns[1]
		if len(ns) > 2 {
			p.ReassocNsOp = ns[2]
		}
		p.Speedup = p.ScalarNsOp / p.DispatchNsOp
		entry.Kernels = append(entry.Kernels, p)
		extra := ""
		if p.ReassocNsOp > 0 {
			extra = fmt.Sprintf("   reassoc %10.1f (%.2fx)", p.ReassocNsOp, p.ScalarNsOp/p.ReassocNsOp)
		}
		fmt.Fprintf(stdout, "%-18s scalar %10.1f ns/op   %-8s %10.1f ns/op   %+6.1f%%%s\n",
			kb.name, p.ScalarNsOp, dispatched.Name(), p.DispatchNsOp,
			100*(p.DispatchNsOp-p.ScalarNsOp)/p.ScalarNsOp, extra)
	}

	if !o.check {
		sp, err := solverBench(o, dispatched.Name())
		if err != nil {
			return err
		}
		entry.Solver = sp
		fmt.Fprintf(stdout, "%-18s scalar %10.1f ms      %-8s %10.1f ms      %+6.1f%%\n",
			sp.Bench, sp.ScalarMs, dispatched.Name(), sp.DispatchMs,
			100*(sp.DispatchMs-sp.ScalarMs)/sp.ScalarMs)

		sv, err := serveBench(o)
		if err != nil {
			return err
		}
		entry.Serve = sv
		fmt.Fprintf(stdout, "%-18s raw %8.0f req/s (p99 %6.2f ms)   admission %8.0f req/s (p99 %6.2f ms, %4.1f%% shed, %.0f ms budget)\n",
			sv.Bench, sv.RawReqS, sv.RawP99Ms, sv.AdmReqS, sv.AdmP99Ms, 100*sv.AdmShedRate, sv.P99BudgetMs)
	}

	if o.outPath != "" {
		if err := writeTrajectory(o.outPath, o.appendOut, entry); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trajectory entry written to %s\n", o.outPath)
	}

	if o.check {
		bad := 0
		for _, p := range entry.Kernels {
			if p.DispatchNsOp > p.ScalarNsOp*o.maxSlowdown {
				fmt.Fprintf(stderr, "REGRESSION %s: dispatched %.1f ns/op vs scalar %.1f ns/op (>%.0f%% slower)\n",
					p.Bench, p.DispatchNsOp, p.ScalarNsOp, 100*(o.maxSlowdown-1))
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d kernel bench(es) regressed past the %.0f%% gate", bad, 100*(o.maxSlowdown-1))
		}
		fmt.Fprintf(stdout, "check passed: dispatched within %.0f%% of scalar on every kernel bench\n",
			100*(o.maxSlowdown-1))
	}
	return nil
}

// kernelBench is one microbenchmark: body(k) returns a closure running
// the kernel once per rep against pre-built inputs.
type kernelBench struct {
	name      string
	n         int // elements (dense) or nonzeros (sparse) per op
	reduction bool
	body      func(k *simd.Kernels) func(reps int)
}

// sink defeats dead-code elimination of pure reductions.
var sink float64

// kernelBenches builds the suite: dense L1-resident vectors for the
// BLAS-1 trio, and a url-like skewed sparse problem (power-law column
// popularity, variable row lengths) for the gather/scatter/SpMV
// primitives that dominate the CA solvers' inner iterations.
func kernelBenches(short bool) []kernelBench {
	n := 65536
	rows := 8192
	if short {
		n = 8192
		rows = 1024
	}
	x := fill(n, 1)
	y := fill(n, 2)
	feat := 4 * n
	xf := fill(feat, 3)
	rowPtr, colIdx, val := skewedCSR(rows, feat, 24)
	nnz := len(val)
	yr := make([]float64, rows)
	// One hot skewed column for the per-row/column primitives, sized so
	// the measurement is not dominated by call overhead and noise.
	gnnz := 8192
	if short {
		gnnz = 1024
	}
	gi, gv := skewedRow(gnnz, feat)

	return []kernelBench{
		{name: sized("dot", n), n: n, reduction: true, body: func(k *simd.Kernels) func(int) {
			return func(reps int) {
				for r := 0; r < reps; r++ {
					sink = k.Dot(x, y)
				}
			}
		}},
		{name: sized("axpy", n), n: n, body: func(k *simd.Kernels) func(int) {
			return func(reps int) {
				for r := 0; r < reps; r++ {
					k.Axpy(1e-9, x, y)
				}
			}
		}},
		{name: sized("scal", n), n: n, body: func(k *simd.Kernels) func(int) {
			return func(reps int) {
				half := reps / 2
				for r := 0; r < reps; r++ {
					// Alternate so x returns to its original scale.
					if r < half*2 && r%2 == 0 {
						k.Scal(1.25, x)
					} else {
						k.Scal(0.8, x)
					}
				}
			}
		}},
		{name: sized("gather-dot", len(gi)), n: len(gi), reduction: true, body: func(k *simd.Kernels) func(int) {
			return func(reps int) {
				for r := 0; r < reps; r++ {
					sink = k.GatherDot(0, gv, gi, xf)
				}
			}
		}},
		{name: sized("scatter-axpy", len(gi)), n: len(gi), body: func(k *simd.Kernels) func(int) {
			return func(reps int) {
				for r := 0; r < reps; r++ {
					k.ScatterAxpy(1e-9, xf, gv, gi)
				}
			}
		}},
		{name: sized("spmv", nnz), n: nnz, reduction: true, body: func(k *simd.Kernels) func(int) {
			return func(reps int) {
				for r := 0; r < reps; r++ {
					k.SpMVRows(rowPtr, colIdx, val, xf, yr, 0, rows)
				}
			}
		}},
	}
}

func sized(name string, n int) string { return fmt.Sprintf("%s-%d", name, n) }

func fill(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// skewedCSR generates a url-like sparse matrix: column popularity is
// Zipf-distributed (a few very hot features, a long cold tail) and row
// lengths vary geometrically around avgNNZ.
func skewedCSR(rows, cols, avgNNZ int) (rowPtr, colIdx []int, val []float64) {
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(cols-1))
	rowPtr = make([]int, rows+1)
	for i := 0; i < rows; i++ {
		nnz := 1 + rng.Intn(2*avgNNZ)
		for k := 0; k < nnz; k++ {
			colIdx = append(colIdx, int(zipf.Uint64()))
			val = append(val, rng.NormFloat64())
		}
		rowPtr[i+1] = len(colIdx)
	}
	return rowPtr, colIdx, val
}

// skewedRow is one Zipf-popular index list with values, for the
// gather/scatter primitives.
func skewedRow(nnz, cols int) ([]int, []float64) {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(cols-1))
	idx := make([]int, nnz)
	val := make([]float64, nnz)
	for k := range idx {
		idx[k] = int(zipf.Uint64())
		val[k] = rng.NormFloat64()
	}
	return idx, val
}

// measure returns best-of-trials nanoseconds per rep for each body,
// with reps calibrated so each trial fills roughly the budget. Trials
// interleave the bodies so machine drift (frequency, a noisy
// neighbour) biases none of them in particular.
func measure(bodies []func(reps int), budget time.Duration, trials int) []float64 {
	reps := make([]int, len(bodies))
	for i, body := range bodies {
		body(1) // warm caches and page in
		start := time.Now()
		body(1)
		per := time.Since(start)
		reps[i] = 1
		if per > 0 {
			reps[i] = int(budget / per)
		}
		if reps[i] < 1 {
			reps[i] = 1
		}
	}
	best := make([]float64, len(bodies))
	for t := 0; t < trials; t++ {
		for i, body := range bodies {
			start := time.Now()
			body(reps[i])
			ns := float64(time.Since(start).Nanoseconds()) / float64(reps[i])
			if t == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	return best
}

// solverBench times a full CA-Lasso solve under the scalar set and the
// dispatched default — the end-to-end view of the same comparison. It
// switches the process-wide dispatch, restoring it before returning.
func solverBench(o options, dispatched string) (*solverPoint, error) {
	m, n, iters := 2048, 1024, 400
	if o.short {
		m, n, iters = 256, 128, 50
	}
	d := datagen.Regression("sabench-lasso", 11, m, n, 0.05, n/16, 0.1)
	cols := d.AsCSR().ToCSC()
	lam := 0.1 * saco.LambdaMax(cols, d.B)
	opt := saco.LassoOptions{Lambda: lam, BlockSize: 4, Iters: iters, S: 8, Seed: 3}

	prev := simd.Active().Name()
	defer simd.Use(prev) //nolint:errcheck // restoring a name Active() just returned
	timeOne := func(name string) (float64, error) {
		if err := simd.Use(name); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := saco.Lasso(cols, d.B, opt); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	}
	// Interleave the sets so drift (GC pressure, a noisy neighbour on
	// the machine) hits both alike instead of whichever ran second.
	trials := o.trials
	if trials > 3 {
		trials = 3
	}
	sp := &solverPoint{Bench: fmt.Sprintf("lasso-%dx%d", m, n)}
	for t := 0; t < trials; t++ {
		s, err := timeOne("scalar")
		if err != nil {
			return nil, err
		}
		dms, err := timeOne(dispatched)
		if err != nil {
			return nil, err
		}
		if t == 0 || s < sp.ScalarMs {
			sp.ScalarMs = s
		}
		if t == 0 || dms < sp.DispatchMs {
			sp.DispatchMs = dms
		}
	}
	sp.Speedup = sp.ScalarMs / sp.DispatchMs
	return sp, nil
}

// writeTrajectory appends (or creates) the JSON-array trajectory file.
func writeTrajectory(path string, appendTo bool, entry benchEntry) error {
	var entries []benchEntry
	if appendTo {
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &entries); err != nil {
				return fmt.Errorf("existing trajectory %s is not a JSON array of entries: %v", path, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	entries = append(entries, entry)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
