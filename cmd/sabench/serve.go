package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"saco"
)

// servePoint is one serving-path measurement: closed-loop clients
// hammer /predict through the micro-batching dispatcher, once with an
// effectively unbounded queue (raw) and once with admission control
// (bounded queue + a queue-delay budget matching the p99 target). The
// pair records the tradeoff the serving layer makes under overload:
// raw keeps every request but lets tail latency grow with the queue;
// admission control holds p99 near the budget by shedding the excess.
type servePoint struct {
	Bench       string  `json:"bench"`
	Clients     int     `json:"clients"`
	P99BudgetMs float64 `json:"p99_budget_ms"`
	RawReqS     float64 `json:"raw_req_s"`
	RawP99Ms    float64 `json:"raw_p99_ms"`
	AdmReqS     float64 `json:"admission_req_s"`
	AdmP99Ms    float64 `json:"admission_p99_ms"`
	AdmShedRate float64 `json:"admission_shed_rate"`
}

// serveBench measures the two admission configurations over one
// published model. Numbers are load-dependent operational throughput,
// not kernel timings — comparable only within a machine class, like
// the solver point.
func serveBench(o options) (*servePoint, error) {
	features, nnz, rowNNZ := 4096, 512, 48
	dur := time.Second
	if o.short {
		features, nnz, rowNNZ = 512, 64, 16
		dur = 250 * time.Millisecond
	}
	rowsPerReq := 8 // heavy enough that the closed-loop fleet overruns one worker
	clients := 8 * runtime.GOMAXPROCS(0)
	if clients < 16 {
		clients = 16
	}
	const budgetMs = 2.0

	dir, err := os.MkdirTemp("", "sabench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort temp cleanup

	reg, err := saco.OpenModelRegistry(dir)
	if err != nil {
		return nil, err
	}
	x := make([]float64, features)
	for i := 0; i < nnz; i++ {
		x[i*(features/nnz)] = 1.0 + float64(i%7)
	}
	if _, err := reg.Publish(saco.NewModel(saco.KindLasso, x)); err != nil {
		return nil, err
	}

	// A LIBSVM request of rowsPerReq rows, each touching rowNNZ features
	// spread over the model's width.
	var req strings.Builder
	for r := 0; r < rowsPerReq; r++ {
		// Indices strictly increase within a row; the +r offset varies
		// the rows without changing the access pattern class.
		for k := 0; k < rowNNZ; k++ {
			fmt.Fprintf(&req, "%d:%g ", 1+k*(features/rowNNZ)+r, 0.5+float64(k%5))
		}
		req.WriteString("\n")
	}
	body := req.String()

	sp := &servePoint{
		Bench:       fmt.Sprintf("serve-predict-%d", features),
		Clients:     clients,
		P99BudgetMs: budgetMs,
	}
	// Workers 1 keeps the scoring path serial so the client fleet can
	// actually overrun it; the interesting quantity is the queue's
	// behaviour, not kernel width.
	raw := saco.ServeOptions{Workers: 1, MaxBatch: 64, QueueDepth: 1 << 15}
	adm := saco.ServeOptions{Workers: 1, MaxBatch: 64, QueueDepth: 256,
		MaxQueueDelay: time.Duration(budgetMs * float64(time.Millisecond))}

	sp.RawReqS, sp.RawP99Ms, _, err = serveLoad(reg, raw, body, clients, dur)
	if err != nil {
		return nil, err
	}
	sp.AdmReqS, sp.AdmP99Ms, sp.AdmShedRate, err = serveLoad(reg, adm, body, clients, dur)
	if err != nil {
		return nil, err
	}
	return sp, nil
}

// serveLoad drives one configuration with a closed-loop client fleet
// and returns (scored req/s, p99 ms over scored requests, shed rate).
func serveLoad(reg *saco.ModelRegistry, opt saco.ServeOptions, body string, clients int, dur time.Duration) (reqS, p99Ms, shedRate float64, err error) {
	srv := saco.NewServer(reg, opt)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	defer client.CloseIdleConnections()

	type tally struct {
		lat  []float64 // ms, 200s only
		shed int
		err  error
	}
	tallies := make([]tally, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(tl *tally) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/predict", "text/plain", strings.NewReader(body))
				if err != nil {
					tl.err = err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close() //nolint:errcheck // drained response body
				switch resp.StatusCode {
				case http.StatusOK:
					tl.lat = append(tl.lat, float64(time.Since(t0).Microseconds())/1000)
				case http.StatusTooManyRequests:
					tl.shed++
				default:
					tl.err = fmt.Errorf("predict answered %d", resp.StatusCode)
					return
				}
			}
		}(&tallies[c])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lat []float64
	shed := 0
	for i := range tallies {
		if tallies[i].err != nil {
			return 0, 0, 0, tallies[i].err
		}
		lat = append(lat, tallies[i].lat...)
		shed += tallies[i].shed
	}
	if len(lat) == 0 {
		return 0, 0, 0, fmt.Errorf("serving bench scored nothing in %v", dur)
	}
	sort.Float64s(lat)
	p99 := lat[min((len(lat)*99)/100, len(lat)-1)]
	total := len(lat) + shed
	return float64(len(lat)) / elapsed, p99, float64(shed) / float64(total), nil
}
