// Command sasolve fits a Lasso or linear-SVM model to a LIBSVM-format
// dataset with the (synchronization-avoiding) coordinate-descent solvers.
//
// Examples:
//
//	sasolve -task lasso -data train.svm -lambda-frac 0.1 -mu 8 -s 64 -accel -iters 5000
//	sasolve -task svm -data train.svm -loss l2 -s 128 -iters 100000 -tol 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"saco"
)

func main() {
	var (
		dataPath   = flag.String("data", "", "LIBSVM input file (required)")
		task       = flag.String("task", "lasso", "lasso or svm")
		iters      = flag.Int("iters", 1000, "iterations H")
		s          = flag.Int("s", 1, "recurrence unrolling parameter (1 = classical)")
		seed       = flag.Uint64("seed", 42, "sampling seed")
		outPath    = flag.String("out", "", "write the model vector here (text, one value per line)")
		track      = flag.Int("track", 0, "print convergence every N iterations")
		lambdaFrac = flag.Float64("lambda-frac", 0.1, "lasso: lambda as a fraction of ||A'b||_inf")
		mu         = flag.Int("mu", 1, "lasso: block size")
		accel      = flag.Bool("accel", false, "lasso: Nesterov acceleration")
		lambda     = flag.Float64("lambda", 1, "svm: penalty parameter")
		loss       = flag.String("loss", "l1", "svm: l1 (hinge) or l2 (squared hinge)")
		tol        = flag.Float64("tol", 0, "svm: stop at this duality gap")
		simP       = flag.Int("simulate", 0, "run on a simulated cluster with this many ranks (0 = local)")
		machine    = flag.String("machine", "cray", "simulated platform: cray, ethernet, spark")
		rankW      = flag.Int("rank-workers", 0, "simulated runs: per-rank core budget for hybrid rank x thread execution (0/1 = flat MPI)")
		backend    = flag.String("backend", "", "local backend: sequential, multicore or async (default sequential; -workers alone implies multicore)")
		workers    = flag.Int("workers", 0, "local backend width; with -backend, 0 or -1 = all cores; without it, legacy semantics: 0 = sequential, -1/N = multicore")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the solve to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile after the solve to this file")
	)
	flag.Parse()
	exec, err := resolveBackend(*backend, *workers)
	fail(err)
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "sasolve: -data is required")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		// fail() exits through os.Exit, which skips defers; route it
		// through stopCPUProfile so an error mid-solve still flushes a
		// valid profile instead of leaving a truncated file.
		var once sync.Once
		stopCPUProfile = func() {
			once.Do(func() {
				pprof.StopCPUProfile()
				f.Close()
			})
		}
		defer stopCPUProfile()
	}
	a, b, err := saco.LoadLIBSVM(*dataPath, 0)
	fail(err)
	fmt.Printf("loaded %s: %d points, %d features, %.4g%% nonzero\n",
		*dataPath, a.M, a.N, 100*a.Density())

	cluster := saco.Cluster{P: *simP, RankWorkers: *rankW}
	if *simP > 0 {
		switch *machine {
		case "cray":
			cluster.Machine = saco.CrayXC30()
		case "ethernet":
			cluster.Machine = saco.EthernetCluster()
		case "spark":
			cluster.Machine = saco.SparkLike()
		default:
			fmt.Fprintf(os.Stderr, "sasolve: unknown machine %q\n", *machine)
			os.Exit(2)
		}
	}

	var x []float64
	switch *task {
	case "lasso":
		cols := a.ToCSC()
		lam := *lambdaFrac * saco.LambdaMax(cols, b)
		opt := saco.LassoOptions{
			Lambda: lam, BlockSize: *mu, Iters: *iters, S: *s,
			Accelerated: *accel, Seed: *seed, TrackEvery: *track, Exec: exec,
		}
		if *simP > 0 {
			res, err := saco.SimulateLasso(a, b, opt, cluster)
			fail(err)
			fmt.Printf("simulated P=%d%s (%s): modeled time %.4es, %d messages, %d words\n",
				*simP, hybridSuffix(*rankW), cluster.Machine.Name, res.ModeledSeconds(),
				res.Stats.TotalMsgs(), res.Stats.TotalWords())
			fmt.Printf("final objective %.6e  (lambda=%.4g)\n", res.Objective, lam)
			x = res.X
			break
		}
		res, err := saco.Lasso(cols, b, opt)
		fail(err)
		for _, p := range res.History {
			fmt.Printf("iter %8d  objective %.6e\n", p.Iter, p.Value)
		}
		fmt.Printf("final objective %.6e  selected features %d/%d  (lambda=%.4g)\n",
			res.Objective, res.NNZ(), a.N, lam)
		x = res.X
	case "svm":
		l := saco.SVML1
		if *loss == "l2" {
			l = saco.SVML2
		}
		opt := saco.SVMOptions{
			Lambda: *lambda, Loss: l, Iters: *iters, S: *s, Seed: *seed,
			TrackEvery: *track, Tol: *tol, Exec: exec,
		}
		if *simP > 0 {
			res, err := saco.SimulateSVM(a, b, opt, cluster)
			fail(err)
			fmt.Printf("simulated P=%d%s (%s): modeled time %.4es, %d messages, %d words\n",
				*simP, hybridSuffix(*rankW), cluster.Machine.Name, res.ModeledSeconds(),
				res.Stats.TotalMsgs(), res.Stats.TotalWords())
			fmt.Printf("final duality gap %.6e after %d iterations\n", res.Gap, res.Iters)
			x = res.X
			break
		}
		res, err := saco.SVM(a, b, opt)
		fail(err)
		for _, p := range res.History {
			fmt.Printf("iter %8d  primal %.6e  dual %.6e  gap %.6e\n", p.Iter, p.Primal, p.Dual, p.Gap)
		}
		fmt.Printf("final duality gap %.6e after %d iterations, %d support vectors\n",
			res.Gap, res.Iters, res.SupportVectors())
		x = res.X
	case "pegasos":
		res, err := saco.PegasosSVM(a, b, saco.SVMOptions{
			Lambda: *lambda, Iters: *iters, Seed: *seed, TrackEvery: *track, Exec: exec,
		})
		fail(err)
		for _, p := range res.History {
			fmt.Printf("iter %8d  primal %.6e\n", p.Iter, p.Primal)
		}
		fmt.Printf("final primal objective %.6e (SGD baseline, no certificate)\n", res.Primal)
		x = res.X
	default:
		fmt.Fprintf(os.Stderr, "sasolve: unknown task %q (lasso, svm, pegasos)\n", *task)
		os.Exit(2)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		fail(err)
		for _, v := range x {
			fmt.Fprintf(f, "%.17g\n", v)
		}
		fail(f.Close())
		fmt.Printf("model written to %s\n", *outPath)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		fail(err)
		runtime.GC() // settle allocations so the profile shows retained heap
		fail(pprof.WriteHeapProfile(f))
		fail(f.Close())
		fmt.Printf("heap profile written to %s\n", *memProf)
	}
}

// resolveBackend maps the -backend/-workers pair onto an Exec. The
// explicit -backend flag wins; without it the historical -workers
// semantics hold (0 = sequential, anything else = multicore at that
// width, -1 = all cores).
func resolveBackend(backend string, workers int) (saco.Exec, error) {
	switch backend {
	case "":
		if workers != 0 {
			return saco.Multicore(workers), nil
		}
		return saco.Exec{}, nil
	case "sequential":
		return saco.Exec{}, nil
	case "multicore":
		return saco.Multicore(workers), nil
	case "async":
		return saco.Async(workers), nil
	default:
		return saco.Exec{}, fmt.Errorf("unknown backend %q (sequential, multicore, async)", backend)
	}
}

// hybridSuffix renders the rank×thread shape of a hybrid simulated run.
func hybridSuffix(rankWorkers int) string {
	if rankWorkers > 1 {
		return fmt.Sprintf("x%d cores", rankWorkers)
	}
	return ""
}

// stopCPUProfile flushes an in-progress CPU profile; a no-op until
// profiling starts. fail() calls it so error exits keep the profile
// readable.
var stopCPUProfile = func() {}

func fail(err error) {
	if err != nil {
		stopCPUProfile()
		fmt.Fprintf(os.Stderr, "sasolve: %v\n", err)
		os.Exit(1)
	}
}
