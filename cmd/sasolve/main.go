// Command sasolve fits a Lasso or linear-SVM model to a LIBSVM-format
// dataset with the (synchronization-avoiding) coordinate-descent solvers.
//
// Examples:
//
//	sasolve -task lasso -data train.svm -lambda-frac 0.1 -mu 8 -s 64 -accel -iters 5000
//	sasolve -task svm -data train.svm -loss l2 -s 128 -iters 100000 -tol 0.1
//	sasolve -task lasso -data url.svm -stream -block-rows 65536 -s 64 -iters 10000
//	sasolve -task lasso -data train.svm -simulate 4 -transport tcp -s 64 -iters 5000
//
// With -stream the input is ingested once into an on-disk shard cache
// (see internal/stream) and solved out of core: peak memory is about
// two row blocks plus solver state instead of the whole matrix, and the
// sequential trajectory is bitwise identical to the in-memory run.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"saco"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks a bad invocation: run prints the flag defaults and
// exits 2, like flag's own parse failures.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// run is the whole program behind a testable seam: it parses args on
// its own FlagSet, writes to the given streams, and returns the process
// exit code instead of calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sasolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath   = fs.String("data", "", "LIBSVM input file (required)")
		task       = fs.String("task", "lasso", "lasso, svm or pegasos")
		iters      = fs.Int("iters", 1000, "iterations H")
		s          = fs.Int("s", 1, "recurrence unrolling parameter (1 = classical)")
		seed       = fs.Uint64("seed", 42, "sampling seed")
		outPath    = fs.String("out", "", "write the model vector here (text, one value per line; a .sacm/.bin suffix selects the versioned binary model format saserve serves)")
		track      = fs.Int("track", 0, "print convergence every N iterations")
		lambdaFrac = fs.Float64("lambda-frac", 0.1, "lasso: lambda as a fraction of ||A'b||_inf")
		mu         = fs.Int("mu", 1, "lasso: block size")
		accel      = fs.Bool("accel", false, "lasso: Nesterov acceleration")
		lambda     = fs.Float64("lambda", 1, "svm: penalty parameter")
		loss       = fs.String("loss", "l1", "svm: l1 (hinge) or l2 (squared hinge)")
		tol        = fs.Float64("tol", 0, "svm: stop at this duality gap")
		simP       = fs.Int("simulate", 0, "run on a distributed cluster with this many ranks (0 = local)")
		transport  = fs.String("transport", "sim", "distributed runs: rank transport, sim (in-process simulated world) or tcp (real loopback TCP mesh; trajectories are bitwise identical)")
		machine    = fs.String("machine", "cray", "simulated platform: cray, ethernet, spark")
		rankW      = fs.Int("rank-workers", 0, "simulated runs: per-rank core budget for hybrid rank x thread execution (0/1 = flat MPI)")
		backend    = fs.String("backend", "", "local backend: sequential, multicore or async (default sequential; -workers alone implies multicore)")
		workers    = fs.Int("workers", 0, "local backend width; with -backend, 0 or -1 = all cores; without it, legacy semantics: 0 = sequential, -1/N = multicore")
		streaming  = fs.Bool("stream", false, "solve out of core: spill the dataset to row-block shards and stream them (bounded memory)")
		blockRows  = fs.Int("block-rows", 8192, "streaming: rows per shard")
		cacheDir   = fs.String("cache-dir", "", "streaming: shard cache directory (reused if it holds a manifest; default: a temp dir removed on exit)")
		layout     = fs.String("layout", "csr", "streaming ingest: shard layout, csr or csc (csc makes Lasso column access conversion-free)")
		codec      = fs.String("codec", "raw", "streaming ingest: shard codec, raw or delta (delta-varint roughly halves url-like shard bytes)")
		useMmap    = fs.Bool("mmap", false, "streaming: read shards via mmap instead of copying (zero-copy raw vals; falls back to copy reads where unsupported)")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the solve to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile after the solve to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h is a successful invocation, like flag.ExitOnError's os.Exit(0)
		}
		return 2
	}
	err := solve(stdout, &options{
		dataPath: *dataPath, task: *task, iters: *iters, s: *s, seed: *seed,
		outPath: *outPath, track: *track, lambdaFrac: *lambdaFrac, mu: *mu,
		accel: *accel, lambda: *lambda, loss: *loss, tol: *tol, simP: *simP,
		transport: *transport, machine: *machine, rankW: *rankW,
		backend: *backend, workers: *workers,
		streaming: *streaming, blockRows: *blockRows, cacheDir: *cacheDir,
		layout: *layout, codec: *codec, useMmap: *useMmap,
		cpuProf: *cpuProf, memProf: *memProf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sasolve: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fs.PrintDefaults()
			return 2
		}
		return 1
	}
	return 0
}

// options carries the parsed flags into solve.
type options struct {
	dataPath, task, outPath    string
	iters, s, track, mu        int
	seed                       uint64
	lambdaFrac, lambda, tol    float64
	accel                      bool
	loss, transport, machine   string
	simP, rankW, workers       int
	backend                    string
	streaming                  bool
	blockRows                  int
	layout, codec              string
	useMmap                    bool
	cacheDir, cpuProf, memProf string
}

// solve validates the options and runs one fit end to end. All exits
// flow back through error returns, so deferred cleanup (profiles, temp
// shard caches) always runs — unlike the old os.Exit path, which could
// leave a truncated CPU profile behind.
func solve(stdout io.Writer, o *options) (err error) {
	exec, err := resolveBackend(o.backend, o.workers)
	if err != nil {
		return err
	}
	switch o.task {
	case "lasso", "svm", "pegasos":
	default:
		return usageError{fmt.Sprintf("unknown task %q (lasso, svm, pegasos)", o.task)}
	}
	if o.dataPath == "" {
		return usageError{"-data is required"}
	}
	cluster := saco.Cluster{P: o.simP, RankWorkers: o.rankW}
	if o.simP > 0 {
		switch o.machine {
		case "cray":
			cluster.Machine = saco.CrayXC30()
		case "ethernet":
			cluster.Machine = saco.EthernetCluster()
		case "spark":
			cluster.Machine = saco.SparkLike()
		default:
			return usageError{fmt.Sprintf("unknown machine %q (cray, ethernet, spark)", o.machine)}
		}
		switch o.transport {
		case "", "sim":
			cluster.Transport = saco.TransportSim
		case "tcp":
			cluster.Transport = saco.TransportTCP
		default:
			return usageError{fmt.Sprintf("unknown transport %q (sim, tcp)", o.transport)}
		}
	}
	if o.streaming && exec.Backend == saco.BackendAsync {
		return usageError{"-stream runs the solver sequentially (streamed shards have no atomic kernels); drop -backend async"}
	}
	layout, err := saco.ParseStreamLayout(o.layout)
	if err != nil {
		return usageError{fmt.Sprintf("unknown layout %q (csr, csc)", o.layout)}
	}
	codec, err := saco.ParseStreamCodec(o.codec)
	if err != nil {
		return usageError{fmt.Sprintf("unknown codec %q (raw, delta)", o.codec)}
	}

	if o.cpuProf != "" {
		f, err := os.Create(o.cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
			return err
		}
		// StopCPUProfile flushes the profile through f; a failed close
		// here means a truncated profile, which must not report success.
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing cpu profile: %w", cerr)
			}
		}()
	}

	// Load the data: resident CSR, or the out-of-core shard cache.
	var (
		ds *saco.StreamDataset
		a  *saco.CSR
		b  []float64
	)
	trainRows := 0
	if o.streaming {
		dir := o.cacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "sasolve-stream-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		if _, statErr := os.Stat(filepath.Join(dir, "manifest.bin")); statErr == nil {
			ds, err = saco.OpenStream(dir)
			if err != nil {
				return err
			}
			if !ds.SourceMatches(o.dataPath) {
				return fmt.Errorf("shard cache %s was built from different data than %s (size or mtime changed); delete the cache or pick another -cache-dir", dir, o.dataPath)
			}
			fmt.Fprintf(stdout, "reusing shard cache %s\n", dir)
		} else {
			ds, err = saco.BuildStream(o.dataPath, dir, saco.StreamOptions{
				BlockRows: o.blockRows, Layout: layout, Codec: codec,
			})
			if err != nil {
				return err
			}
		}
		if o.useMmap {
			ds.SetReadMode(saco.StreamMmap)
		}
		b = ds.B
		m, n := ds.Dims()
		trainRows = m
		fmt.Fprintf(stdout, "streaming %s: %d points, %d features, %.4g%% nonzero, %d shards x %d rows\n",
			o.dataPath, m, n, 100*ds.Density(), ds.NumShards(), ds.BlockRows())
		// Reused caches keep their ingest-time layout/codec, so report
		// the manifest's values rather than the flags'.
		if bytes, err := ds.ShardBytes(); err == nil {
			fmt.Fprintf(stdout, "shards: layout=%s codec=%s read=%s, %.1f MiB on disk\n",
				ds.Layout(), ds.Codec(), ds.ReadMode(), float64(bytes)/(1<<20))
		}
	} else {
		a, b, err = saco.LoadLIBSVM(o.dataPath, 0)
		if err != nil {
			return err
		}
		trainRows = a.M
		fmt.Fprintf(stdout, "loaded %s: %d points, %d features, %.4g%% nonzero\n",
			o.dataPath, a.M, a.N, 100*a.Density())
	}
	if w := saco.KernelWarning(); w != "" {
		fmt.Fprintf(stdout, "warning: %s\n", w)
	}
	fmt.Fprintf(stdout, "kernels: %s\n", saco.KernelSet())

	var x []float64
	modelKind := saco.KindRaw
	modelLambda := 0.0
	switch o.task {
	case "lasso":
		var cols saco.ColMatrix
		if o.streaming {
			cols = ds.Cols()
		} else {
			cols = a.ToCSC()
		}
		lam := o.lambdaFrac * saco.LambdaMax(cols, b)
		modelKind, modelLambda = saco.KindLasso, lam
		opt := saco.LassoOptions{
			Lambda: lam, BlockSize: o.mu, Iters: o.iters, S: o.s,
			Accelerated: o.accel, Seed: o.seed, TrackEvery: o.track, Exec: exec,
		}
		if o.simP > 0 {
			var src saco.ClusterSource
			if o.streaming {
				src = ds
			} else {
				src = saco.MatrixSource(a)
			}
			res, err := saco.DistLasso(src, b, opt, cluster)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s P=%d%s (%s): modeled time %.4es, %d messages, %d words\n",
				runLabel(cluster), o.simP, hybridSuffix(o.rankW), cluster.Machine.Name, res.ModeledSeconds(),
				res.Stats.TotalMsgs(), res.Stats.TotalWords())
			fmt.Fprintf(stdout, "final objective %.6e  (lambda=%.4g)\n", res.Objective, lam)
			x = res.X
			break
		}
		res, err := saco.Lasso(cols, b, opt)
		if err != nil {
			return err
		}
		for _, p := range res.History {
			fmt.Fprintf(stdout, "iter %8d  objective %.6e\n", p.Iter, p.Value)
		}
		_, n := cols.Dims()
		fmt.Fprintf(stdout, "final objective %.6e  selected features %d/%d  (lambda=%.4g)\n",
			res.Objective, res.NNZ(), n, lam)
		x = res.X
	case "svm":
		modelKind, modelLambda = saco.KindSVM, o.lambda
		l := saco.SVML1
		if o.loss == "l2" {
			l = saco.SVML2
		}
		opt := saco.SVMOptions{
			Lambda: o.lambda, Loss: l, Iters: o.iters, S: o.s, Seed: o.seed,
			TrackEvery: o.track, Tol: o.tol, Exec: exec,
		}
		if o.simP > 0 {
			var src saco.ClusterSource
			if o.streaming {
				src = ds
			} else {
				src = saco.MatrixSource(a)
			}
			res, err := saco.DistSVM(src, b, opt, cluster)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s P=%d%s (%s): modeled time %.4es, %d messages, %d words\n",
				runLabel(cluster), o.simP, hybridSuffix(o.rankW), cluster.Machine.Name, res.ModeledSeconds(),
				res.Stats.TotalMsgs(), res.Stats.TotalWords())
			fmt.Fprintf(stdout, "final duality gap %.6e after %d iterations\n", res.Gap, res.Iters)
			x = res.X
			break
		}
		var rows saco.RowMatrix
		if o.streaming {
			rows = ds.Rows()
		} else {
			rows = a
		}
		res, err := saco.SVM(rows, b, opt)
		if err != nil {
			return err
		}
		for _, p := range res.History {
			fmt.Fprintf(stdout, "iter %8d  primal %.6e  dual %.6e  gap %.6e\n", p.Iter, p.Primal, p.Dual, p.Gap)
		}
		fmt.Fprintf(stdout, "final duality gap %.6e after %d iterations, %d support vectors\n",
			res.Gap, res.Iters, res.SupportVectors())
		x = res.X
	case "pegasos":
		modelKind, modelLambda = saco.KindPegasos, o.lambda
		var rows saco.RowMatrix
		if o.streaming {
			rows = ds.Rows()
		} else {
			rows = a
		}
		res, err := saco.PegasosSVM(rows, b, saco.SVMOptions{
			Lambda: o.lambda, Iters: o.iters, Seed: o.seed, TrackEvery: o.track, Exec: exec,
		})
		if err != nil {
			return err
		}
		for _, p := range res.History {
			fmt.Fprintf(stdout, "iter %8d  primal %.6e\n", p.Iter, p.Primal)
		}
		fmt.Fprintf(stdout, "final primal objective %.6e (SGD baseline, no certificate)\n", res.Primal)
		x = res.X
	}

	if o.outPath != "" {
		if binaryModelPath(o.outPath) {
			m := saco.NewModel(modelKind, x)
			m.TrainRows = trainRows
			m.Lambda = modelLambda
			if err := saco.SaveModel(o.outPath, m); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "binary model written to %s (%s, %d/%d nonzero)\n",
				o.outPath, modelKind, m.NNZ(), m.Features)
		} else {
			if err := writeModel(o.outPath, x); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "model written to %s\n", o.outPath)
		}
	}

	if rss, ok := peakRSS(); ok {
		fmt.Fprintf(stdout, "peak RSS %.1f MiB\n", float64(rss)/(1<<20))
	} else {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(stdout, "runtime sys %.1f MiB (peak RSS unavailable on this platform)\n", float64(ms.Sys)/(1<<20))
	}

	if o.memProf != "" {
		f, err := os.Create(o.memProf)
		if err != nil {
			return err
		}
		runtime.GC() // settle allocations so the profile shows retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "heap profile written to %s\n", o.memProf)
	}
	return nil
}

// binaryModelPath reports whether -out asks for the versioned binary
// model format (.sacm / .bin) instead of the historical text format —
// the artifact cmd/saserve serves and refits.
func binaryModelPath(path string) bool {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".sacm", ".bin":
		return true
	}
	return false
}

// writeModel writes the solution vector, one value per line, checking
// the buffered writes and the close (a full disk must not report
// success).
func writeModel(path string, x []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, v := range x {
		if _, err := fmt.Fprintf(bw, "%.17g\n", v); err != nil {
			f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close() //saco:nolint commerr best-effort close on an already-failing path; the first error is propagating and the success path checks Close
		return err
	}
	return f.Close()
}

// resolveBackend maps the -backend/-workers pair onto an Exec. The
// explicit -backend flag wins; without it the historical -workers
// semantics hold (0 = sequential, anything else = multicore at that
// width, -1 = all cores).
func resolveBackend(backend string, workers int) (saco.Exec, error) {
	switch backend {
	case "":
		if workers != 0 {
			return saco.Multicore(workers), nil
		}
		return saco.Exec{}, nil
	case "sequential":
		return saco.Exec{}, nil
	case "multicore":
		return saco.Multicore(workers), nil
	case "async":
		return saco.Async(workers), nil
	default:
		return saco.Exec{}, usageError{fmt.Sprintf("unknown backend %q (sequential, multicore, async)", backend)}
	}
}

// runLabel names the distributed execution backend in the stats line:
// "simulated" keeps the historical output for the default in-process
// world, "distributed tcp" marks runs whose ranks exchanged real bytes.
func runLabel(cluster saco.Cluster) string {
	if cluster.Transport == saco.TransportTCP {
		return "distributed tcp"
	}
	return "simulated"
}

// hybridSuffix renders the rank×thread shape of a hybrid simulated run.
func hybridSuffix(rankWorkers int) string {
	if rankWorkers > 1 {
		return fmt.Sprintf("x%d cores", rankWorkers)
	}
	return ""
}

// peakRSS returns the process's high-water resident set size in bytes
// (VmHWM), the number the streaming memory model is about: with
// -stream it stays near two shards + solver state however large the
// input file is. Linux-only; callers fall back to runtime stats.
func peakRSS() (uint64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
