package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"saco"
)

// writeTinyDataset writes a small solvable LIBSVM file.
func writeTinyDataset(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tiny.svm")
	data := `1 1:1 3:0.5
-1 2:-1 4:2
1 1:0.3 4:-1
-1 3:1.5
1 2:0.7 3:-0.2
-1 1:-0.4 4:0.9
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownBackendExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", "x.svm", "-backend", "bogus")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown backend "bogus"`) {
		t.Fatalf("stderr %q lacks the backend error", stderr)
	}
	if !strings.Contains(stderr, "-backend") || !strings.Contains(stderr, "-task") {
		t.Fatalf("stderr %q lacks the usage listing", stderr)
	}
}

func TestUnknownTaskExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", "x.svm", "-task", "ridge")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown task "ridge"`) || !strings.Contains(stderr, "-task") {
		t.Fatalf("stderr %q lacks the task error + usage", stderr)
	}
}

func TestMissingDataExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-data is required") {
		t.Fatalf("stderr %q lacks the -data message", stderr)
	}
}

func TestUnknownFlagExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "definitely-not-a-flag") {
		t.Fatalf("stderr %q lacks the flag name", stderr)
	}
}

func TestUnknownMachineExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", "x.svm", "-simulate", "4", "-machine", "abacus")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown machine "abacus"`) {
		t.Fatalf("stderr %q lacks the machine error", stderr)
	}
}

func TestStreamRejectsAsync(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", "x.svm", "-stream", "-backend", "async")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-stream") {
		t.Fatalf("stderr %q lacks the stream/async conflict", stderr)
	}
}

func TestUnknownLayoutExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", "x.svm", "-stream", "-layout", "coo")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown layout "coo"`) {
		t.Fatalf("stderr %q lacks the layout error", stderr)
	}
}

func TestUnknownCodecExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", "x.svm", "-stream", "-codec", "zstd")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown codec "zstd"`) {
		t.Fatalf("stderr %q lacks the codec error", stderr)
	}
}

// TestReportsKernelSet: every solve names the internal/simd dispatch
// set it ran on, so a recorded log identifies the kernels behind it.
func TestReportsKernelSet(t *testing.T) {
	path := writeTinyDataset(t)
	code, out, stderr := runCLI(t, "-data", path, "-task", "lasso", "-iters", "20")
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr)
	}
	if want := "kernels: " + saco.KernelSet() + "\n"; !strings.Contains(out, want) {
		t.Fatalf("output lacks %q: %q", want, out)
	}
}

// TestStreamLayoutCodecParity is the CLI face of the format matrix: the
// same solve through every layout × codec × read-mode combination must
// report a byte-identical objective line, and the streaming report must
// name the active layout/codec/read mode and the shard bytes.
func TestStreamLayoutCodecParity(t *testing.T) {
	path := writeTinyDataset(t)
	args := []string{"-data", path, "-task", "lasso", "-iters", "50", "-s", "4", "-mu", "2"}
	code, mem, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("in-memory run failed (%d): %s", code, stderr)
	}
	want := finalObjective(t, mem)
	for _, layout := range []string{"csr", "csc"} {
		for _, codec := range []string{"raw", "delta"} {
			for _, mmap := range []bool{false, true} {
				run := append(append([]string{}, args...),
					"-stream", "-block-rows", "2", "-layout", layout, "-codec", codec)
				if mmap {
					run = append(run, "-mmap")
				}
				code, out, stderr := runCLI(t, run...)
				if code != 0 {
					t.Fatalf("%s/%s mmap=%v failed (%d): %s", layout, codec, mmap, code, stderr)
				}
				if got := finalObjective(t, out); got != want {
					t.Fatalf("%s/%s mmap=%v: objective %q != %q", layout, codec, mmap, got, want)
				}
				report := "shards: layout=" + layout + " codec=" + codec
				if !strings.Contains(out, report) {
					t.Fatalf("%s/%s: output lacks %q: %q", layout, codec, report, out)
				}
				if !strings.Contains(out, "MiB on disk") {
					t.Fatalf("output lacks the shard-bytes report: %q", out)
				}
				if mmap && !strings.Contains(out, "read=mmap") {
					t.Fatalf("-mmap run does not report read=mmap: %q", out)
				}
			}
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr, "-data") {
		t.Fatalf("-h did not print usage: %q", stderr)
	}
}

func TestMissingFileExitsOne(t *testing.T) {
	code, _, stderr := runCLI(t, "-data", filepath.Join(t.TempDir(), "nope.svm"))
	if code != 1 {
		t.Fatalf("exit code %d, want 1: %s", code, stderr)
	}
}

// TestStreamMatchesInMemory runs the same tiny solve through both data
// paths and asserts identical reported objectives (the CLI face of the
// bitwise-parity contract).
func TestStreamMatchesInMemory(t *testing.T) {
	path := writeTinyDataset(t)
	args := []string{"-data", path, "-task", "lasso", "-iters", "50", "-s", "4", "-mu", "2"}
	code, mem, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("in-memory run failed (%d): %s", code, stderr)
	}
	code, str, stderr := runCLI(t, append(args, "-stream", "-block-rows", "2")...)
	if code != 0 {
		t.Fatalf("streaming run failed (%d): %s", code, stderr)
	}
	objMem := finalObjective(t, mem)
	objStr := finalObjective(t, str)
	if objMem != objStr {
		t.Fatalf("objectives differ: %q vs %q", objMem, objStr)
	}
	if !strings.Contains(str, "shards x 2 rows") {
		t.Fatalf("streaming output lacks shard report: %q", str)
	}
	for _, out := range []string{mem, str} {
		if !strings.Contains(out, "peak RSS") && !strings.Contains(out, "runtime sys") {
			t.Fatalf("output lacks memory report: %q", out)
		}
	}
}

// TestCacheDirReuse solves twice against the same cache directory; the
// second run must reuse the shards instead of re-ingesting.
func TestCacheDirReuse(t *testing.T) {
	path := writeTinyDataset(t)
	cache := t.TempDir()
	args := []string{"-data", path, "-task", "svm", "-iters", "30", "-stream", "-cache-dir", cache}
	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("first run failed: %s", stderr)
	}
	code, out, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("second run failed: %s", stderr)
	}
	if !strings.Contains(out, "reusing shard cache") {
		t.Fatalf("second run did not reuse the cache: %q", out)
	}

	// A different dataset against the same cache must be refused, not
	// silently solved from the stale shards.
	other := filepath.Join(t.TempDir(), "other.svm")
	if err := os.WriteFile(other, []byte("1 1:1\n-1 2:2\n1 3:0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-data", other, "-task", "svm", "-iters", "30", "-stream", "-cache-dir", cache)
	if code != 1 || !strings.Contains(stderr, "different data") {
		t.Fatalf("stale cache not rejected: code %d stderr %q", code, stderr)
	}
}

// TestModelOutput checks the -out vector file on the streaming path.
func TestModelOutput(t *testing.T) {
	path := writeTinyDataset(t)
	outPath := filepath.Join(t.TempDir(), "model.txt")
	code, _, stderr := runCLI(t, "-data", path, "-task", "lasso", "-iters", "20",
		"-stream", "-block-rows", "3", "-out", outPath)
	if code != 0 {
		t.Fatalf("run failed: %s", stderr)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // four features
		t.Fatalf("model has %d lines, want 4", len(lines))
	}
}

// TestBinaryModelOutput: a .sacm -out writes the versioned binary
// format with provenance — the exact text-model coefficients, the task
// kind and the resolved lambda — and the facade loader round-trips it.
func TestBinaryModelOutput(t *testing.T) {
	path := writeTinyDataset(t)
	dir := t.TempDir()
	txtPath := filepath.Join(dir, "model.txt")
	binPath := filepath.Join(dir, "model.sacm")
	if code, _, stderr := runCLI(t, "-data", path, "-task", "lasso", "-iters", "40", "-out", txtPath); code != 0 {
		t.Fatalf("text run failed: %s", stderr)
	}
	code, stdout, stderr := runCLI(t, "-data", path, "-task", "lasso", "-iters", "40", "-out", binPath)
	if code != 0 {
		t.Fatalf("binary run failed: %s", stderr)
	}
	if !strings.Contains(stdout, "binary model written to") {
		t.Fatalf("stdout %q lacks the binary write report", stdout)
	}

	bm, err := saco.LoadModel(binPath)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := saco.LoadModel(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Kind != saco.KindLasso || tm.Kind != saco.KindRaw {
		t.Fatalf("kinds: binary %v, text %v", bm.Kind, tm.Kind)
	}
	if bm.TrainRows != 6 || bm.Lambda <= 0 {
		t.Fatalf("provenance: rows %d lambda %v", bm.TrainRows, bm.Lambda)
	}
	bd, td := bm.Dense(), tm.Dense()
	if len(bd) != len(td) {
		t.Fatalf("widths %d vs %d", len(bd), len(td))
	}
	for j := range bd {
		if bd[j] != td[j] {
			t.Fatalf("coef %d: binary %v != text %v (same solve must produce identical models)", j, bd[j], td[j])
		}
	}

	// SVM task stamps its kind too.
	svmPath := filepath.Join(dir, "svm.bin")
	if code, _, stderr := runCLI(t, "-data", path, "-task", "svm", "-iters", "200", "-out", svmPath); code != 0 {
		t.Fatalf("svm run failed: %s", stderr)
	}
	sm, err := saco.LoadModel(svmPath)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Kind != saco.KindSVM || sm.Lambda != 1 {
		t.Fatalf("svm model: kind %v lambda %v", sm.Kind, sm.Lambda)
	}
}

func finalObjective(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "final objective") {
			return line
		}
	}
	t.Fatalf("no final objective in %q", out)
	return ""
}
