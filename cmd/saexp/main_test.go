package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoExperimentsExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: saexp") || !strings.Contains(stderr, "-machine") {
		t.Fatalf("stderr %q lacks the usage", stderr)
	}
}

func TestUnknownExperimentExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "table99")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown experiment "table99"`) {
		t.Fatalf("stderr %q lacks the experiment error", stderr)
	}
}

func TestUnknownMachineExitsWithUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-machine", "abacus", "table1")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown machine "abacus"`) {
		t.Fatalf("stderr %q lacks the machine error", stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr, "-scale") {
		t.Fatalf("-h did not print usage: %q", stderr)
	}
}

// TestTable1Smoke runs the cheapest experiment (the analytic Table I
// cost model — no solves) end to end and pins the golden structure of
// its output: the header, every s row of the sweep, and the completion
// stamp. The cost model is deterministic, so the row set is stable.
func TestTable1Smoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "table1")
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr)
	}
	for _, want := range []string{
		"Table I",
		"s", "F (flops)", "M (words)", "L (msgs)", "W (words)",
		"[table1 completed in",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("output lacks %q:\n%s", want, stdout)
		}
	}
	for _, s := range []string{"1", "2", "512"} {
		if !strings.Contains(stdout, "\n"+s+" ") && !strings.Contains(stdout, "\n "+s+" ") && !strings.Contains(stdout, s) {
			t.Fatalf("output lacks the s=%s row:\n%s", s, stdout)
		}
	}
	// Determinism: the analytic table is byte-identical across runs
	// apart from the wall-clock completion stamp.
	_, again, _ := runCLI(t, "table1")
	if tableBody(stdout) != tableBody(again) {
		t.Fatal("table1 output is not deterministic")
	}
}

// TestMachineFlagChangesModel: the modeled platform must actually reach
// the cost model (ethernet and cray produce different modeled times).
func TestMachineFlagChangesModel(t *testing.T) {
	_, cray, _ := runCLI(t, "table1")
	code, eth, stderr := runCLI(t, "-machine", "ethernet", "table1")
	if code != 0 {
		t.Fatalf("ethernet run failed: %s", stderr)
	}
	if tableBody(cray) == tableBody(eth) {
		t.Fatal("machine flag did not change the modeled costs")
	}
}

// tableBody strips the timing stamp, which legitimately varies.
func tableBody(out string) string {
	if i := strings.Index(out, "completed in"); i >= 0 {
		return out[:i]
	}
	return out
}
