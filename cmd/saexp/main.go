// Command saexp regenerates the tables and figures of "Avoiding
// Synchronization in First-Order Methods for Sparse Convex Optimization"
// (Devarakonda et al., IPDPS 2018) on synthetic dataset replicas and a
// simulated Cray XC30.
//
// Usage:
//
//	saexp [flags] experiment...
//
// Experiments: table1 table2 fig2 table3 fig3 fig4 fig5 table5 ablations
// all. Flags -scale and -iters trade fidelity for speed; -machine picks
// the modeled platform (cray, ethernet, spark).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"saco/internal/bench"
	"saco/internal/mpi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: it parses args on
// its own FlagSet, writes to the given streams, and returns the process
// exit code instead of calling os.Exit (the same shape as sasolve's).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("saexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale   = fs.Float64("scale", 1, "dataset scale multiplier")
		iters   = fs.Float64("iters", 1, "iteration-count multiplier")
		seed    = fs.Uint64("seed", 0, "experiment seed (0 = default)")
		machine = fs.String("machine", "cray", "modeled platform: cray, ethernet, spark")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	exps := fs.Args()
	if len(exps) == 0 {
		fmt.Fprintln(stderr, "usage: saexp [flags] {table1|table2|fig2|table3|fig3|fig4|fig5|table5|ablations|all}...")
		fs.PrintDefaults()
		return 2
	}

	var mc mpi.Machine
	switch *machine {
	case "cray":
		mc = mpi.CrayXC30()
	case "ethernet":
		mc = mpi.EthernetCluster()
	case "spark":
		mc = mpi.SparkLike()
	default:
		fmt.Fprintf(stderr, "saexp: unknown machine %q\n", *machine)
		return 2
	}
	cfg := bench.Config{Scale: *scale, IterScale: *iters, Machine: mc, Out: stdout, Seed: *seed}

	type experiment struct {
		name string
		run  func(bench.Config) error
	}
	wrap2 := func(f func(bench.Config) (*bench.Fig2Result, error)) func(bench.Config) error {
		return func(c bench.Config) error { _, err := f(c); return err }
	}
	exptab := []experiment{
		{"table1", func(c bench.Config) error { _, err := bench.Table1(c); return err }},
		{"table2", func(c bench.Config) error { _, err := bench.Tables2and4(c); return err }},
		{"table4", func(c bench.Config) error { _, err := bench.Tables2and4(c); return err }},
		{"fig2", wrap2(bench.Fig2)},
		{"table3", wrap2(bench.Table3)},
		{"fig3", func(c bench.Config) error { _, err := bench.Fig3(c); return err }},
		{"fig4", func(c bench.Config) error { _, err := bench.Fig4(c); return err }},
		{"fig5", func(c bench.Config) error { _, err := bench.Fig5(c); return err }},
		{"table5", func(c bench.Config) error { _, err := bench.Table5(c); return err }},
		{"ablations", func(c bench.Config) error { _, err := bench.Ablations(c); return err }},
	}
	lookup := map[string]func(bench.Config) error{}
	for _, e := range exptab {
		lookup[e.name] = e.run
	}

	requested := exps
	if len(exps) == 1 && exps[0] == "all" {
		requested = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "table5", "ablations"}
	}
	for _, name := range requested {
		runExp, ok := lookup[name]
		if !ok {
			fmt.Fprintf(stderr, "saexp: unknown experiment %q\n", name)
			return 2
		}
		start := time.Now()
		if err := runExp(cfg); err != nil {
			fmt.Fprintf(stderr, "saexp: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stdout, "\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
