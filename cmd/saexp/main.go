// Command saexp regenerates the tables and figures of "Avoiding
// Synchronization in First-Order Methods for Sparse Convex Optimization"
// (Devarakonda et al., IPDPS 2018) on synthetic dataset replicas and a
// simulated Cray XC30.
//
// Usage:
//
//	saexp [flags] experiment...
//
// Experiments: table1 table2 fig2 table3 fig3 fig4 fig5 table5 ablations
// all. Flags -scale and -iters trade fidelity for speed; -machine picks
// the modeled platform (cray, ethernet, spark).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"saco/internal/bench"
	"saco/internal/mpi"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1, "dataset scale multiplier")
		iters   = flag.Float64("iters", 1, "iteration-count multiplier")
		seed    = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		machine = flag.String("machine", "cray", "modeled platform: cray, ethernet, spark")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: saexp [flags] {table1|table2|fig2|table3|fig3|fig4|fig5|table5|ablations|all}...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var mc mpi.Machine
	switch *machine {
	case "cray":
		mc = mpi.CrayXC30()
	case "ethernet":
		mc = mpi.EthernetCluster()
	case "spark":
		mc = mpi.SparkLike()
	default:
		fmt.Fprintf(os.Stderr, "saexp: unknown machine %q\n", *machine)
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, IterScale: *iters, Machine: mc, Out: os.Stdout, Seed: *seed}

	type experiment struct {
		name string
		run  func(bench.Config) error
	}
	wrap2 := func(f func(bench.Config) (*bench.Fig2Result, error)) func(bench.Config) error {
		return func(c bench.Config) error { _, err := f(c); return err }
	}
	exps := []experiment{
		{"table1", func(c bench.Config) error { _, err := bench.Table1(c); return err }},
		{"table2", func(c bench.Config) error { _, err := bench.Tables2and4(c); return err }},
		{"table4", func(c bench.Config) error { _, err := bench.Tables2and4(c); return err }},
		{"fig2", wrap2(bench.Fig2)},
		{"table3", wrap2(bench.Table3)},
		{"fig3", func(c bench.Config) error { _, err := bench.Fig3(c); return err }},
		{"fig4", func(c bench.Config) error { _, err := bench.Fig4(c); return err }},
		{"fig5", func(c bench.Config) error { _, err := bench.Fig5(c); return err }},
		{"table5", func(c bench.Config) error { _, err := bench.Table5(c); return err }},
		{"ablations", func(c bench.Config) error { _, err := bench.Ablations(c); return err }},
	}
	lookup := map[string]func(bench.Config) error{}
	for _, e := range exps {
		lookup[e.name] = e.run
	}

	requested := args
	if len(args) == 1 && args[0] == "all" {
		requested = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "table5", "ablations"}
	}
	for _, name := range requested {
		run, ok := lookup[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "saexp: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		if err := run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "saexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
