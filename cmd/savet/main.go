// Command savet runs the repository's static-analysis suite
// (internal/lint): the machine-checked form of the ROADMAP's
// determinism and concurrency contracts.
//
// Standalone (the documented interface, used by CI and `make lint`):
//
//	go run ./cmd/savet ./...
//	savet -only detfloat,commerr ./internal/...
//	savet -list
//
// It also speaks enough of the `go vet -vettool` unit-checker protocol
// to run as a vet tool:
//
//	go build -o savet ./cmd/savet && go vet -vettool=$(pwd)/savet ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"saco/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// `go vet` probes its tool with -V=full and then invokes it once
	// per package with a single *.cfg argument.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintln(stdout, "savet version 1")
		return 0
	}
	// cmd/go also probes `tool -flags` for pass-through flag definitions;
	// savet exposes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0], stderr)
	}

	fs := flag.NewFlagSet("savet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: savet [-list] [-only a,b] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = selectAnalyzers(analyzers, *only)
		if err != nil {
			fmt.Fprintln(stderr, "savet:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "savet:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "savet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "savet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, names string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// inModuleScope reports whether a vet-config import path names one of
// this module's plain (non-test-variant) packages.
func inModuleScope(path string) bool {
	if path != "saco" && !strings.HasPrefix(path, "saco/") {
		return false
	}
	return !strings.Contains(path, ".test") && !strings.Contains(path, " [")
}

// vetConfig is the subset of cmd/go's vet.cfg the tool needs.
type vetConfig struct {
	ImportPath  string
	GoFiles     []string
	PackageFile map[string]string
	VetxOutput  string
}

// runVetCfg analyzes one package as described by a cmd/go vet config.
func runVetCfg(cfgPath string, stderr io.Writer) int {
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "savet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(b, &cfg); err != nil {
		fmt.Fprintln(stderr, "savet: parsing vet config:", err)
		return 2
	}
	// The driver expects a facts file even though savet keeps no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "savet:", err)
			return 2
		}
	}
	// go vet also feeds the tool dependency packages (for facts) and
	// test variants ("p [p.test]", "p.test", "p_test"). savet's
	// contracts target the module's own non-test code — the same scope
	// the standalone sweep covers — so everything else is a no-op.
	if !inModuleScope(cfg.ImportPath) {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	cfg.GoFiles = files
	fset := token.NewFileSet()
	imp := lint.NewImporter(fset, cfg.PackageFile)
	pkg, err := lint.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(stderr, "savet:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, "savet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
