package main

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

func TestVersionProbe(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "savet version ") {
		t.Fatalf("-V=full output %q lacks the version banner go vet matches on", out.String())
	}
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"detfloat", "mapiter", "nondet", "commerr", "atomicguard"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no packages", nil},
		{"unknown analyzer", []string{"-only", "nosuch", "./..."}},
		{"bad flag", []string{"-frobnicate"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != 2 {
				t.Fatalf("args %v: exit %d, want 2 (stderr %q)", tc.args, code, errOut.String())
			}
			if errOut.Len() == 0 {
				t.Fatalf("args %v: expected a usage message on stderr", tc.args)
			}
		})
	}
}

// The standalone sweep over the repository itself must be clean — the
// same gate CI enforces. Skipped in -short mode: it loads and
// type-checks the whole module.
func TestSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"saco/..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("savet saco/...: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// End-to-end through the real `go vet -vettool` driver: builds the
// binary and lets cmd/go speak the unit-checker protocol (the -V probe,
// the .cfg invocation, the vetx facts file) against one small package.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the savet binary and invokes go vet")
	}
	bin := t.TempDir() + "/savet"
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building savet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "saco/internal/rng")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on a clean package: %v\n%s", err, out)
	}
}
