module saco

go 1.24.0
