// Benchmarks regenerating each table and figure of the paper at reduced
// scale (one benchmark per artifact, as indexed in DESIGN.md §5). Run
// cmd/saexp for the full-scale experiment output; these benches verify
// the harness end to end under `go test -bench` and report the headline
// metric of each artifact via b.ReportMetric.
package saco_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"saco"
	"saco/internal/bench"
	"saco/internal/core"
	"saco/internal/mat"
	"saco/internal/mpi"
)

func sizeName(prefix string, n int) string { return fmt.Sprintf("%s=%d", prefix, n) }

func benchDense(n int, data []float64) *mat.Dense { return mat.NewDenseData(n, n, data) }

// benchCfg is the reduced-scale configuration used by every artifact
// benchmark. Scale/IterScale trade fidelity for wall time; cmd/saexp runs
// the same code at full scale, and -short (the CI bench-smoke job)
// shrinks the presets further.
func benchCfg() bench.Config {
	cfg := bench.Config{Scale: 0.05, IterScale: 0.05, Seed: 99}
	if testing.Short() {
		cfg.Scale = 0.02
		cfg.IterScale = 0.02
	}
	return cfg
}

// BenchmarkTable1CostModel evaluates the Table I closed forms.
func BenchmarkTable1CostModel(b *testing.B) {
	var opt int
	for i := 0; i < b.N; i++ {
		res, err := bench.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		opt = res.OptimalS
	}
	b.ReportMetric(float64(opt), "optimal-s")
}

// BenchmarkTable2Datasets generates every replica of Tables II and IV.
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Tables2and4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Convergence runs the convergence-equivalence panels
// (objective vs iterations, SA vs classic at extreme s).
func BenchmarkFig2Convergence(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, d := range res.Datasets {
			for _, v := range d.RelErr {
				if v > worst {
					worst = v
				}
			}
		}
	}
	b.ReportMetric(worst, "max-rel-obj-err")
}

// BenchmarkTable3Equivalence measures the Table III final relative
// objective error on a longer single-dataset run.
func BenchmarkTable3Equivalence(b *testing.B) {
	data := saco.Regression("t3", 1, 400, 250, 0.08, 10, 0.05)
	cols := data.Cols()
	lambda := 0.1 * saco.LambdaMax(cols, data.B)
	var rel float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := saco.LassoOptions{Lambda: lambda, BlockSize: 1, Iters: 1000, Accelerated: true, Seed: 7}
		classic, err := saco.Lasso(cols, data.B, opt)
		if err != nil {
			b.Fatal(err)
		}
		opt.S = 1000
		sa, err := saco.Lasso(cols, data.B, opt)
		if err != nil {
			b.Fatal(err)
		}
		rel = math.Abs(classic.Objective-sa.Objective) / classic.Objective
	}
	b.ReportMetric(rel, "rel-obj-err")
}

// BenchmarkFig3TimeToSolution runs the objective-vs-modeled-time panels
// on the simulated cluster and reports the best SA speedup observed.
func BenchmarkFig3TimeToSolution(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, p := range res.Panels {
			for _, v := range p.Speedup {
				if v > best {
					best = v
				}
			}
		}
	}
	b.ReportMetric(best, "best-sa-speedup")
}

// BenchmarkFig4StrongScaling runs the accCD vs SA-accCD scaling panels.
func BenchmarkFig4StrongScaling(b *testing.B) {
	var speedupAtMaxP float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Panels[0].Scaling[len(res.Panels[0].Scaling)-1]
		speedupAtMaxP = last.ClassicSeconds / last.SASeconds
	}
	b.ReportMetric(speedupAtMaxP, "speedup-at-max-p")
}

// BenchmarkFig4SpeedupBreakdown reports the communication-speedup peak of
// the Fig. 4e–h panels.
func BenchmarkFig4SpeedupBreakdown(b *testing.B) {
	var peakComm float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		peakComm = 0
		for _, p := range res.Panels {
			for _, sp := range p.Speedups {
				if sp.Comm > peakComm {
					peakComm = sp.Comm
				}
			}
		}
	}
	b.ReportMetric(peakComm, "peak-comm-speedup")
}

// BenchmarkFig5DualityGap runs the SVM duality-gap panels and reports the
// worst SA-vs-classic trajectory deviation.
func BenchmarkFig5DualityGap(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range res.Panels {
			for _, v := range p.MaxDeviation {
				if v > worst {
					worst = v
				}
			}
		}
	}
	b.ReportMetric(worst, "max-gap-deviation")
}

// BenchmarkTable5SVMSpeedup times SVM-L1 vs SA-SVM-L1 on the simulated
// cluster.
func BenchmarkTable5SVMSpeedup(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Table5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range res.Rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
	}
	b.ReportMetric(best, "best-svm-speedup")
}

// BenchmarkAblations runs the design-choice and machine-sensitivity
// studies, reporting the Spark-like speedup (the paper's §VII claim that
// high-latency frameworks gain most).
func BenchmarkAblations(b *testing.B) {
	var spark float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Ablations(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		spark = res.Machines[len(res.Machines)-1].Speedup
	}
	b.ReportMetric(spark, "spark-speedup")
}

// --- kernel micro-benchmarks: the per-iteration building blocks ---

// BenchmarkKernelAllreduce measures the simulated collective that forms
// every iteration's critical path.
func BenchmarkKernelAllreduce(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(sizeName("p", p), func(b *testing.B) {
			data := make([]float64, 256)
			_, err := mpi.Run(context.Background(), p, mpi.Zero(), func(c *mpi.Comm) error {
				for i := 0; i < b.N; i++ {
					if err := c.Allreduce(mpi.Sum, data); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkKernelGram measures the batched Gram assembly (Alg. 2 line 11),
// the flop hot spot of the SA solvers.
func BenchmarkKernelGram(b *testing.B) {
	data := saco.Regression("gram", 1, 4000, 2000, 0.01, 10, 0)
	csc := data.CSR.ToCSC()
	smp := core.NewBlockSampler(&saco.LassoOptions{BlockSize: 8, Seed: 1}, 2000)
	cols := make([]int, 0, 8*32)
	for j := 0; j < 32; j++ {
		cols = append(cols, smp.Next()...)
	}
	g := make([]float64, len(cols)*len(cols))
	gd := benchDense(len(cols), g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csc.ColGram(cols, gd)
	}
}

// BenchmarkKernelSolverIteration measures one classical accBCD iteration
// end to end (sequential).
func BenchmarkKernelSolverIteration(b *testing.B) {
	data := saco.Regression("iter", 2, 4000, 2000, 0.01, 10, 0)
	cols := data.Cols()
	lambda := 0.1 * saco.LambdaMax(cols, data.B)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := saco.Lasso(cols, data.B, saco.LassoOptions{
			Lambda: lambda, BlockSize: 8, Iters: 100, Accelerated: true, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100, "iters/op")
}
