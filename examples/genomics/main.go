// Genomics-style feature selection: the paper's leu dataset (leukemia
// gene expression: 38 patients, 7129 genes) is the canonical m << n
// problem where Lasso's sparsity matters. This example fits a
// regularization path with accBCD, compares L1 against elastic net, and
// verifies that the SA variant selects the identical gene set at every
// λ — the property that makes SA safe for scientific workloads.
package main

import (
	"fmt"
	"log"

	"saco"
)

func main() {
	data, err := saco.Replica("leu", 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	m, n := data.Dims()
	fmt.Printf("leu replica: %d samples x %d genes (dense)\n\n", m, n)

	cols := data.Cols()
	lambdaMax := saco.LambdaMax(cols, data.B)

	fmt.Println("Lasso regularization path (accBCD, µ=8, 1500 iterations):")
	fmt.Printf("%10s  %14s  %8s  %s\n", "lambda/max", "objective", "genes", "SA support identical?")
	for _, frac := range []float64{0.5, 0.2, 0.1, 0.05, 0.02} {
		opt := saco.LassoOptions{
			Lambda:      frac * lambdaMax,
			BlockSize:   8,
			Iters:       1500,
			Accelerated: true,
			Seed:        11,
		}
		classic, err := saco.Lasso(cols, data.B, opt)
		if err != nil {
			log.Fatal(err)
		}
		opt.S = 128
		sa, err := saco.Lasso(cols, data.B, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f  %14.6e  %8d  %v\n",
			frac, classic.Objective, classic.NNZ(), sameSupport(classic.X, sa.X))
	}

	// Elastic net keeps correlated genes together instead of picking one
	// arbitrarily — the grouping effect.
	fmt.Println("\nElastic net (α=0.7) at lambda/max = 0.1:")
	enOpt := saco.LassoOptions{
		Reg:         saco.ElasticNet{Lambda: 0.1 * lambdaMax, Alpha: 0.7},
		BlockSize:   8,
		Iters:       1500,
		Accelerated: true,
		Seed:        11,
	}
	en, err := saco.Lasso(cols, data.B, enOpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  objective %.6e, %d genes selected (L1 at same λ: see path above)\n",
		en.Objective, en.NNZ())
}

func sameSupport(a, b []float64) bool {
	for i := range a {
		if (a[i] != 0) != (b[i] != 0) {
			return false
		}
	}
	return true
}
