// Scaling study: measure the synchronization-avoiding speedup on the
// simulated cluster across rank counts and s values (the paper's Fig. 4
// methodology), then extrapolate to the paper's 12,288-core scale with
// the Table I cost model.
package main

import (
	"fmt"
	"log"

	"saco"
	"saco/internal/costmodel"
)

func main() {
	data, err := saco.Replica("url", 0.25, 9)
	if err != nil {
		log.Fatal(err)
	}
	m, n := data.Dims()
	fmt.Printf("url replica: %d points x %d features, %.4g%% nonzero\n\n",
		m, n, 100*data.Density())

	a := data.AsCSR()
	lambda := 0.1 * saco.LambdaMax(a.ToCSC(), data.B)
	opt := saco.LassoOptions{Lambda: lambda, Iters: 800, Accelerated: true, Seed: 13}

	fmt.Println("measured on the simulated Cray XC30 (accCD vs SA-accCD):")
	fmt.Printf("%6s  %14s  %14s  %8s  %8s\n", "P", "accCD", "SA-accCD", "best s", "speedup")
	for _, p := range []int{8, 16, 32, 64} {
		cluster := saco.Cluster{P: p, Machine: saco.CrayXC30()}
		opt.S = 1
		classic, err := saco.SimulateLasso(a, data.B, opt, cluster)
		if err != nil {
			log.Fatal(err)
		}
		bestT, bestS := -1.0, 1
		for _, s := range []int{8, 32, 128, 512} {
			opt.S = s
			sa, err := saco.SimulateLasso(a, data.B, opt, cluster)
			if err != nil {
				log.Fatal(err)
			}
			if t := sa.ModeledSeconds(); bestT < 0 || t < bestT {
				bestT, bestS = t, s
			}
		}
		fmt.Printf("%6d  %13.4es  %13.4es  %8d  %7.2fx\n",
			p, classic.ModeledSeconds(), bestT, bestS, classic.ModeledSeconds()/bestT)
	}

	// Cost-model extrapolation to the paper's scale: same formulas
	// (Table I), the full url dimensions, P up to 12288.
	fmt.Println("\nTable I model extrapolated to the full url dataset:")
	fmt.Printf("%6s  %10s  %14s  %14s  %8s\n", "P", "best s", "accCD (model)", "SA-accCD", "speedup")
	pb := costmodel.Problem{
		M: 2396130, N: 3231961, Density: 0.000036,
		Mu: 1, H: 100000, S: 1, P: 3072, HalfPack: true,
	}
	mc := saco.CrayXC30()
	for _, p := range []int{3072, 6144, 12288} {
		cur := pb.WithP(p)
		sStar := costmodel.OptimalS(cur, mc, 2048)
		t1 := cur.Time(mc)
		tS := cur.WithS(sStar).Time(mc)
		fmt.Printf("%6d  %10d  %13.4es  %13.4es  %7.2fx\n", p, sStar, t1, tS, t1/tS)
	}
	fmt.Println("\n(The paper reports 2.8x for SA-accCD on url at P=12288; the model's")
	fmt.Println("crossover structure — speedup growing with P — is the claim under test.)")
}
