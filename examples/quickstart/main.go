// Quickstart: fit a Lasso model on synthetic data, then show that the
// synchronization-avoiding variant reproduces it while synchronizing 64x
// less often on a simulated cluster.
package main

import (
	"fmt"
	"log"

	"saco"
)

func main() {
	// 1000 data points, 500 features, 5% dense, a 10-sparse true model.
	data := saco.Regression("quickstart", 1, 1000, 500, 0.05, 10, 0.1)
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)

	opt := saco.LassoOptions{
		Lambda:      lambda,
		BlockSize:   8, // accBCD: update 8 coordinates per iteration
		Iters:       2000,
		Accelerated: true,
		Seed:        42,
	}
	classic, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accBCD:            objective %.6e, %d/%d features selected\n",
		classic.Objective, classic.NNZ(), len(classic.X))

	// The SA variant: same math, one communication round per 64 steps.
	opt.S = 64
	sa, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SA-accBCD (s=64):  objective %.6e  (relative difference %.2e)\n",
		sa.Objective, rel(classic.Objective, sa.Objective))

	// On a simulated 16-rank Cray XC30, count the synchronizations. For
	// block methods the message grows as s²µ², so the best s is moderate
	// (the paper's Fig. 3 uses s = 8–32 for BCD); s = 16 here.
	cluster := saco.Cluster{P: 16, Machine: saco.CrayXC30()}
	opt.S = 1
	dClassic, err := saco.SimulateLasso(data.AsCSR(), data.B, opt, cluster)
	if err != nil {
		log.Fatal(err)
	}
	opt.S = 16
	dSA, err := saco.SimulateLasso(data.AsCSR(), data.B, opt, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated cluster (P=16, Cray XC30 model):\n")
	fmt.Printf("  accBCD:    %6d messages, modeled time %.3es\n",
		dClassic.Stats.TotalMsgs(), dClassic.ModeledSeconds())
	fmt.Printf("  SA-accBCD: %6d messages, modeled time %.3es  (%.1fx speedup)\n",
		dSA.Stats.TotalMsgs(), dSA.ModeledSeconds(),
		dClassic.ModeledSeconds()/dSA.ModeledSeconds())
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if a < 0 {
		a = -a
	}
	if a == 0 {
		return d
	}
	return d / a
}
