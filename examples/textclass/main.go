// Text classification with dual coordinate-descent SVM on a news20-like
// sparse dataset, tracking the duality gap as the optimality certificate
// (the paper's Fig. 5 methodology), then timing classical vs
// synchronization-avoiding training on a simulated cluster (Table V).
package main

import (
	"fmt"
	"log"

	"saco"
)

func main() {
	data, err := saco.Replica("news20.binary", 0.25, 3)
	if err != nil {
		log.Fatal(err)
	}
	m, n := data.Dims()
	fmt.Printf("news20.binary replica: %d documents x %d terms, %.4g%% nonzero\n\n",
		m, n, 100*data.Density())

	// Sequential training with duality-gap tracking.
	opt := saco.SVMOptions{
		Lambda:     1,
		Loss:       saco.SVML1,
		Iters:      8 * m, // eight epochs
		Seed:       5,
		TrackEvery: 2 * m,
	}
	res, err := saco.SVM(data.Rows(), data.B, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("duality gap trajectory (SVM-L1):")
	for _, p := range res.History {
		fmt.Printf("  iter %8d  primal %.4e  dual %.4e  gap %.4e\n",
			p.Iter, p.Primal, p.Dual, p.Gap)
	}
	fmt.Printf("training accuracy: %.1f%%, support vectors: %d/%d\n\n",
		100*accuracy(data, res.X), res.SupportVectors(), m)

	// Cluster comparison: classical vs SA at several s (Table V style).
	cluster := saco.Cluster{P: 24, Machine: saco.CrayXC30()}
	opt.TrackEvery = 0
	classic, err := saco.SimulateSVM(data.AsCSR(), data.B, opt, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated cluster (P=24): SVM-L1 modeled time %.4es\n", classic.ModeledSeconds())
	for _, s := range []int{16, 64, 128} {
		opt.S = s
		sa, err := saco.SimulateSVM(data.AsCSR(), data.B, opt, cluster)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SA-SVM-L1 s=%-4d modeled time %.4es  (%.2fx)\n",
			s, sa.ModeledSeconds(), classic.ModeledSeconds()/sa.ModeledSeconds())
	}
}

func accuracy(data *saco.Dataset, x []float64) float64 {
	m, _ := data.Dims()
	margins := make([]float64, m)
	data.Rows().MulVec(x, margins)
	correct := 0
	for i, v := range margins {
		if v*data.B[i] > 0 {
			correct++
		}
	}
	return float64(correct) / float64(m)
}
