package saco_test

import (
	"math"
	"path/filepath"
	"testing"

	"saco"
)

// TestPublicAPILassoRoundTrip exercises the whole public surface the way
// a downstream user would: generate data, pick λ, solve classically and
// with SA, compare.
func TestPublicAPILassoRoundTrip(t *testing.T) {
	data := saco.Regression("demo", 1, 300, 150, 0.1, 8, 0.05)
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
	opt := saco.LassoOptions{Lambda: lambda, BlockSize: 4, Iters: 500, Accelerated: true, Seed: 2}
	classic, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.S = 50
	sa, err := saco.Lasso(data.Cols(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(classic.Objective-sa.Objective) > 1e-9*math.Abs(classic.Objective) {
		t.Fatalf("SA objective %v != classic %v", sa.Objective, classic.Objective)
	}
	if classic.NNZ() == 0 {
		t.Fatal("no features selected")
	}
}

func TestPublicAPISVMAndSimulation(t *testing.T) {
	data := saco.Classification("demo", 3, 200, 80, 0.2, 0.05)
	opt := saco.SVMOptions{Lambda: 1, Loss: saco.SVML1, Iters: 3000, Seed: 4}
	seq, err := saco.SVM(data.Rows(), data.B, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Gap < -1e-9 {
		t.Fatalf("negative duality gap %v", seq.Gap)
	}
	// Simulated cluster: SA variant must match and communicate less.
	classic, err := saco.SimulateSVM(data.AsCSR(), data.B, opt, saco.Cluster{P: 4, Machine: saco.CrayXC30()})
	if err != nil {
		t.Fatal(err)
	}
	opt.S = 32
	sa, err := saco.SimulateSVM(data.AsCSR(), data.B, opt, saco.Cluster{P: 4, Machine: saco.CrayXC30()})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Stats.TotalMsgs() >= classic.Stats.TotalMsgs() {
		t.Fatal("SA did not reduce message count")
	}
	if math.Abs(sa.Gap-classic.Gap) > 1e-6*(1+math.Abs(classic.Gap)) {
		t.Fatalf("simulated SA gap %v != classic %v", sa.Gap, classic.Gap)
	}
}

func TestPublicAPISimulateLassoMachines(t *testing.T) {
	data := saco.Regression("demo", 5, 200, 100, 0.1, 6, 0.05)
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
	opt := saco.LassoOptions{Lambda: lambda, Iters: 200, Accelerated: true, Seed: 6, S: 16}
	for _, m := range []saco.Machine{saco.CrayXC30(), saco.EthernetCluster(), saco.SparkLike()} {
		res, err := saco.SimulateLasso(data.AsCSR(), data.B, opt, saco.Cluster{P: 4, Machine: m})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.ModeledSeconds() <= 0 {
			t.Fatalf("%s: no modeled time", m.Name)
		}
	}
}

func TestPublicAPILIBSVMFiles(t *testing.T) {
	data := saco.Classification("io", 7, 40, 20, 0.3, 0.1)
	path := filepath.Join(t.TempDir(), "d.svm")
	if err := saco.SaveLIBSVM(path, data.AsCSR(), data.B); err != nil {
		t.Fatal(err)
	}
	a, b, err := saco.LoadLIBSVM(path, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.M != 40 || a.N != 20 || len(b) != 40 {
		t.Fatalf("loaded %dx%d with %d labels", a.M, a.N, len(b))
	}
}

func TestPublicAPIBuilders(t *testing.T) {
	coo := saco.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 2)
	a := coo.ToCSR()
	res, err := saco.Lasso(a.ToCSC(), []float64{1, 2}, saco.LassoOptions{Lambda: 0.01, Iters: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 0.5*(1+4) {
		t.Fatalf("objective %v did not improve on x=0", res.Objective)
	}
	if _, err := saco.Replica("news20", 0.02, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := saco.Replica("bogus", 1, 1); err == nil {
		t.Fatal("expected error for unknown replica")
	}
}

func TestPublicAPIRegularizers(t *testing.T) {
	data := saco.Regression("reg", 9, 120, 60, 0.15, 5, 0.05)
	lambda := 0.1 * saco.LambdaMax(data.Cols(), data.B)
	for _, reg := range []saco.Regularizer{
		saco.L1{Lambda: lambda},
		saco.ElasticNet{Lambda: lambda, Alpha: 0.8},
	} {
		res, err := saco.Lasso(data.Cols(), data.B, saco.LassoOptions{
			Reg: reg, Iters: 300, BlockSize: 2, Accelerated: true, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", reg.Name(), err)
		}
		if math.IsNaN(res.Objective) {
			t.Fatalf("%s: NaN objective", reg.Name())
		}
	}
}
